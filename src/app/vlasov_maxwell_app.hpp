#pragma once
// Compatibility façade over the composable Simulation core (app/simulation.hpp).
//
// Historically this class *was* the App layer, hard-coding one serial
// Vlasov + Maxwell + SSP-RK3 pipeline. The composition now lives in
// Simulation — an ordered Updater pipeline over a named StateVector with
// selectable steppers, pluggable collisions, and threaded RHS evaluation —
// and VlasovMaxwellApp survives as a thin parameter-struct adapter so
// existing drivers keep compiling. It produces bit-for-bit the same
// trajectories as the original implementation. New scenarios should use
// Simulation::builder() directly; see docs/ARCHITECTURE.md.

#include <optional>
#include <string>
#include <vector>

#include "app/projection.hpp"
#include "app/simulation.hpp"
#include "dg/maxwell.hpp"
#include "dg/moments.hpp"
#include "dg/vlasov.hpp"
#include "grid/grid.hpp"

namespace vdg {

struct SpeciesParams {
  /// Species label, used as the StateVector slot name: must be non-empty,
  /// unique across species, and not the reserved slot name "em" (the
  /// constructor throws otherwise; the name was display-only historically).
  std::string name = "elc";
  double charge = -1.0;
  double mass = 1.0;
  Grid velGrid;               ///< vdim-dimensional velocity grid
  ScalarFn init;              ///< f0(x..., v...) on the phase grid
  FluxType flux = FluxType::Penalty;
};

struct VlasovMaxwellParams {
  Grid confGrid;              ///< cdim-dimensional configuration grid
  int polyOrder = 2;
  BasisFamily family = BasisFamily::Serendipity;
  MaxwellParams field;        ///< field solver parameters
  bool evolveField = true;    ///< false: fixed external field / free streaming
  std::optional<VectorFn> initField;  ///< writes 8 components (E, B, phi, psi)
  double cflFrac = 0.9;       ///< dt = cflFrac / ((2p+1) * maxFreq)
  /// Uniform immobile charge background added to the divergence-cleaning
  /// charge density (e.g. +n0 e for a static neutralizing ion population).
  double backgroundCharge = 0.0;
};

class VlasovMaxwellApp {
 public:
  VlasovMaxwellApp(VlasovMaxwellParams params, std::vector<SpeciesParams> species);

  /// Take one SSP-RK3 step with dt from the CFL condition (or the given dt
  /// if positive). Returns the dt taken.
  double step(double dtFixed = 0.0) { return sim_.step(dtFixed); }

  /// Step until tEnd; returns the number of steps taken.
  int advanceTo(double tEnd) { return sim_.advanceTo(tEnd); }

  [[nodiscard]] double time() const { return sim_.time(); }
  [[nodiscard]] int numSpecies() const { return sim_.numSpecies(); }
  [[nodiscard]] const Field& distf(int s) const { return sim_.distf(s); }
  [[nodiscard]] Field& distf(int s) { return sim_.distf(s); }
  [[nodiscard]] const Field& emField() const { return sim_.emField(); }
  [[nodiscard]] Field& emField() { return sim_.emField(); }
  [[nodiscard]] const Grid& phaseGrid(int s) const { return sim_.phaseGrid(s); }
  [[nodiscard]] const Grid& confGrid() const { return sim_.confGrid(); }
  [[nodiscard]] const Basis& phaseBasis(int s) const { return sim_.phaseBasis(s); }
  [[nodiscard]] const Basis& confBasis() const { return sim_.confBasis(); }
  [[nodiscard]] const MomentUpdater& moments(int s) const { return sim_.moments(s); }

  /// Conservation diagnostics (paper Section II: the delicate J.E exchange).
  using Energetics = Simulation::Energetics;
  [[nodiscard]] Energetics energetics() const { return sim_.energetics(); }

  /// L2 norm^2 of a species distribution function (decays monotonically
  /// with penalty fluxes, conserved with central fluxes).
  [[nodiscard]] double distfL2(int s) const { return sim_.distfL2(s); }

  /// Discrete field-particle energy exchange of the paper's Eq. 9:
  /// int J_h . E_h dx for one species (positive: field energy flows to the
  /// particles). Computed exactly from the moment tapes and the L2 inner
  /// product of the configuration expansions.
  [[nodiscard]] double energyTransfer(int s) const { return sim_.energyTransfer(s); }

  /// The wrapped Simulation (e.g. to inspect the assembled pipeline).
  [[nodiscard]] Simulation& simulation() { return sim_; }
  [[nodiscard]] const Simulation& simulation() const { return sim_; }

 private:
  Simulation sim_;
};

}  // namespace vdg
