#pragma once
// The high-level "App" layer (the role of Gkeyll's LuaJIT App system):
// composes species kinetic solvers, the Maxwell field solver, the
// moment-based current coupling and an SSP-RK3 stepper into a complete
// Vlasov-Maxwell simulation with conservation diagnostics.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/projection.hpp"
#include "dg/maxwell.hpp"
#include "dg/moments.hpp"
#include "dg/vlasov.hpp"
#include "grid/grid.hpp"

namespace vdg {

struct SpeciesParams {
  std::string name = "elc";
  double charge = -1.0;
  double mass = 1.0;
  Grid velGrid;               ///< vdim-dimensional velocity grid
  ScalarFn init;              ///< f0(x..., v...) on the phase grid
  FluxType flux = FluxType::Penalty;
};

struct VlasovMaxwellParams {
  Grid confGrid;              ///< cdim-dimensional configuration grid
  int polyOrder = 2;
  BasisFamily family = BasisFamily::Serendipity;
  MaxwellParams field;        ///< field solver parameters
  bool evolveField = true;    ///< false: fixed external field / free streaming
  std::optional<VectorFn> initField;  ///< writes 8 components (E, B, phi, psi)
  double cflFrac = 0.9;       ///< dt = cflFrac / ((2p+1) * maxFreq)
  /// Uniform immobile charge background added to the divergence-cleaning
  /// charge density (e.g. +n0 e for a static neutralizing ion population).
  double backgroundCharge = 0.0;
};

class VlasovMaxwellApp {
 public:
  VlasovMaxwellApp(VlasovMaxwellParams params, std::vector<SpeciesParams> species);

  /// Take one SSP-RK3 step with dt from the CFL condition (or the given dt
  /// if positive). Returns the dt taken.
  double step(double dtFixed = 0.0);

  /// Step until tEnd; returns the number of steps taken.
  int advanceTo(double tEnd);

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] int numSpecies() const { return static_cast<int>(species_.size()); }
  [[nodiscard]] const Field& distf(int s) const { return f_[static_cast<std::size_t>(s)]; }
  [[nodiscard]] Field& distf(int s) { return f_[static_cast<std::size_t>(s)]; }
  [[nodiscard]] const Field& emField() const { return em_; }
  [[nodiscard]] Field& emField() { return em_; }
  [[nodiscard]] const Grid& phaseGrid(int s) const {
    return phaseGrids_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const Grid& confGrid() const { return params_.confGrid; }
  [[nodiscard]] const Basis& phaseBasis(int s) const {
    return vlasov_[static_cast<std::size_t>(s)]->kernels().phase[0];
  }
  [[nodiscard]] const Basis& confBasis() const { return maxwell_->basis(); }
  [[nodiscard]] const MomentUpdater& moments(int s) const {
    return *mom_[static_cast<std::size_t>(s)];
  }

  /// Conservation diagnostics (paper Section II: the delicate J.E exchange).
  struct Energetics {
    double time = 0.0;
    std::vector<double> mass;            ///< per species: int m f dx dv
    std::vector<double> particleEnergy;  ///< per species: int (m/2)|v|^2 f
    double fieldEnergy = 0.0;            ///< (eps0/2) int |E|^2 + c^2|B|^2
    double electricEnergy = 0.0;
    double magneticEnergy = 0.0;
    [[nodiscard]] double totalEnergy() const {
      double e = fieldEnergy;
      for (double p : particleEnergy) e += p;
      return e;
    }
  };
  [[nodiscard]] Energetics energetics() const;

  /// L2 norm^2 of a species distribution function (decays monotonically
  /// with penalty fluxes, conserved with central fluxes).
  [[nodiscard]] double distfL2(int s) const;

  /// Discrete field-particle energy exchange of the paper's Eq. 9:
  /// int J_h . E_h dx for one species (positive: field energy flows to the
  /// particles). Computed exactly from the moment tapes and the L2 inner
  /// product of the configuration expansions.
  [[nodiscard]] double energyTransfer(int s) const;

 private:
  struct Rates {
    std::vector<Field> f;
    Field em;
  };
  /// rhs of the full coupled system at the given state; returns max CFL freq.
  double rates(std::vector<Field>& f, Field& em, Rates& out);
  void applyBoundary(std::vector<Field>& f, Field& em) const;

  VlasovMaxwellParams params_;
  std::vector<SpeciesParams> species_;
  std::vector<Grid> phaseGrids_;
  std::vector<std::unique_ptr<VlasovUpdater>> vlasov_;
  std::vector<std::unique_ptr<MomentUpdater>> mom_;
  std::unique_ptr<MaxwellUpdater> maxwell_;

  std::vector<Field> f_;
  Field em_;
  Field current_, chargeDens_, m0scratch_;
  Rates k_;
  std::vector<Field> fStage_[2];
  Field emStage_[2];
  double time_ = 0.0;
};

}  // namespace vdg
