#include "app/conformance.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "app/updaters.hpp"

namespace vdg {

namespace {

constexpr double kPi = std::numbers::pi;

Simulation::Builder landauBuilder() {
  const double k = 0.5;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({12}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({16}, {-6.0}, {6.0}),
               [k](const double* z) {
                 const double x = z[0], v = z[1];
                 return (1.0 + 0.05 * std::cos(k * x)) / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * v * v);
               })
      .field(MaxwellParams{})
      .initField([k](const double* x, double* em) {
        for (int c = 0; c < 8; ++c) em[c] = 0.0;
        em[0] = -0.05 * std::sin(k * x[0]) / k;
      })
      .stepper(Stepper::SspRk3)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

Simulation::Builder sheathBuilder() {
  // Miniature of examples/sheath_1x1v: absorbing walls on both species,
  // grounded Dirichlet electrodes for the potential, LBO keeping the bulk
  // Maxwellian. Small enough for a multi-rank conformance step battery,
  // wall-shaped enough to exercise every kNoNeighbor path.
  const double massRatio = 25.0;
  const double vti = std::sqrt(0.25 / massRatio);
  const auto maxwellian = [](double v, double vth) {
    return std::exp(-0.5 * v * v / (vth * vth)) / std::sqrt(2.0 * kPi * vth * vth);
  };
  PoissonParams poisson;
  poisson.bc[0][0] = {PoissonBcKind::Dirichlet, 0.0};
  poisson.bc[0][1] = {PoissonBcKind::Dirichlet, 0.0};
  auto b = Simulation::builder();
  b.confGrid(Grid::make({12}, {0.0}, {16.0}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({12}, {-6.0}, {6.0}),
               [=](const double* z) { return maxwellian(z[1], 1.0); })
      .collisions(LboParams{.collisionFreq = 0.02})
      .species("ion", 1.0, massRatio, Grid::make({12}, {-6.0 * vti}, {6.0 * vti}),
               [=](const double* z) { return maxwellian(z[1], vti); })
      .collisions(LboParams{.collisionFreq = 0.02})
      .boundary(0, Edge::Lower, {BcKind::Absorb})
      .boundary(0, Edge::Upper, {BcKind::Absorb})
      .field(poisson)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

Simulation::Builder poisson2x2vBuilder() {
  // Doubly periodic 2x2v electrostatic run on the matrix-free Krylov
  // backend (PoissonMethod::Auto resolves to ConjGrad for cdim == 2): the
  // iteration count of every per-stage solve depends on the bits of the
  // globally-reduced charge density, so any reduction-order slip in a
  // backend shows up as a Krylov history drift long before the state
  // visibly diverges.
  const double amp = 0.05, vt = 0.6;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({6, 6}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi}))
      .basis(1, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({6, 6}, {-3.0, -3.0}, {3.0, 3.0}),
               [=](const double* z) {
                 const double x = z[0], y = z[1], vx = z[2], vy = z[3];
                 const double pert = 1.0 + amp * (std::cos(x) + std::cos(y));
                 return pert * std::exp(-0.5 * (vx * vx + vy * vy) / (vt * vt)) /
                        (2.0 * kPi * vt * vt);
               })
      .field(PoissonParams{})
      .backgroundCharge(1.0)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

Simulation::Builder lboBuilder() {
  auto b = landauBuilder();
  b.collisions(LboParams{1.0, 0.5, true});
  return b;
}

}  // namespace

std::vector<std::string> conformanceScenarios() {
  return {"landau", "lbo", "sheath", "poisson2x2v"};
}

Simulation::Builder conformanceScenario(const std::string& name) {
  if (name == "landau") return landauBuilder();
  if (name == "lbo") return lboBuilder();
  if (name == "sheath") return sheathBuilder();
  if (name == "poisson2x2v") return poisson2x2vBuilder();
  throw std::invalid_argument("conformanceScenario: unknown scenario '" + name + "'");
}

CartDecomp conformanceDecomp(const Simulation::Builder& builder, int ranks) {
  return CartDecomp::make(builder.confGrid(), ranks, builder.periodicDims());
}

namespace {

void recordStep(Simulation& sim, ConformanceTrace& trace) {
  trace.dts.push_back(sim.step());
  if (sim.poissonField())
    trace.krylovIters.push_back(
        static_cast<double>(sim.poissonField()->lastSolveStats().iterations));
}

}  // namespace

ConformanceResult runConformanceRank(const Simulation::Builder& builder,
                                     const CartDecomp& decomp, Communicator& comm,
                                     int steps, bool overlapHalo) {
  ConformanceResult res;

  // The serial oracle, run privately by every rank (small scenarios make
  // this cheaper than shipping global state across processes) — the
  // global grid, the shared SerialComm, the blocking schedule.
  Simulation::Builder ob = builder;
  ob.communicator(&SerialComm::instance());
  ob.threads(1);
  Simulation oracle = ob.build();

  // This rank's window on the backend under test.
  Simulation::Builder rb = builder;
  rb.confGrid(decomp.localGrid(builder.confGrid(), comm.rank()));
  rb.communicator(&comm);
  rb.threads(1);
  rb.overlapHalo(overlapHalo);
  Simulation sim = rb.build();
  // build() skips the t = 0 derived-field refresh on multi-rank
  // communicators (it is collective); every rank entering here together
  // is that collective. No-op for Maxwell scenarios.
  sim.refreshDerivedFields();

  for (int i = 0; i < steps; ++i) recordStep(oracle, res.oracle);
  for (int i = 0; i < steps; ++i) recordStep(sim, res.rank);

  // Bitwise window comparison: every interior coefficient of every slot
  // against the oracle's cells at the global indices.
  const StateVector& ls = sim.state();
  const StateVector& gs = oracle.state();
  double bad = 0.0;
  for (int i = 0; i < ls.numSlots(); ++i) {
    const Field& lf = ls.slot(i);
    const Field& gf = gs.slot(i);
    forEachCell(lf.grid(), [&](const MultiIndex& idx) {
      MultiIndex gidx = idx;
      for (int d = 0; d < lf.grid().ndim; ++d)
        gidx[d] += lf.grid().offset[static_cast<std::size_t>(d)];
      const double* pl = lf.at(idx);
      const double* pg = gf.at(gidx);
      for (int c = 0; c < lf.ncomp(); ++c)
        if (pl[c] != pg[c]) bad += 1.0;
    });
  }
  res.mismatches = bad;
  return res;
}

std::vector<double> packConformance(const ConformanceResult& r) {
  std::vector<double> p;
  p.push_back(r.mismatches);
  p.push_back(static_cast<double>(r.rank.dts.size()));
  p.push_back(static_cast<double>(r.rank.krylovIters.size()));
  p.insert(p.end(), r.rank.dts.begin(), r.rank.dts.end());
  p.insert(p.end(), r.oracle.dts.begin(), r.oracle.dts.end());
  p.insert(p.end(), r.rank.krylovIters.begin(), r.rank.krylovIters.end());
  p.insert(p.end(), r.oracle.krylovIters.begin(), r.oracle.krylovIters.end());
  return p;
}

ConformanceResult unpackConformance(std::span<const double> p) {
  if (p.size() < 3) throw std::invalid_argument("unpackConformance: short payload");
  ConformanceResult r;
  r.mismatches = p[0];
  const std::size_t ns = static_cast<std::size_t>(p[1]);
  const std::size_t nk = static_cast<std::size_t>(p[2]);
  if (p.size() != 3 + 2 * ns + 2 * nk)
    throw std::invalid_argument("unpackConformance: payload size mismatch");
  std::size_t off = 3;
  auto take = [&](std::vector<double>& dst, std::size_t n) {
    dst.assign(p.begin() + static_cast<long>(off), p.begin() + static_cast<long>(off + n));
    off += n;
  };
  take(r.rank.dts, ns);
  take(r.oracle.dts, ns);
  take(r.rank.krylovIters, nk);
  take(r.oracle.krylovIters, nk);
  return r;
}

}  // namespace vdg
