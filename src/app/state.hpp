#pragma once
// The simulation state as a named collection of DG coefficient fields.
//
// A StateVector owns one Field per "slot": one phase-space distribution
// function per species (slot name = species name) plus, by convention, the
// configuration-space EM field under the reserved name "em". The steppers
// (app/simulation.hpp) treat a StateVector as an element of a vector space
// — combine/axpy act slot-by-slot — while the Updater pipeline addresses
// individual slots through a StateView, a non-owning list of Field
// pointers sharing the owner's slot order.

#include <string>
#include <vector>

#include "grid/grid.hpp"

namespace vdg {

/// Non-owning view of a StateVector's slots (same indices as the owner).
/// Fields are mutable through the view: RHS evaluation writes them, and
/// boundary updaters sync ghost layers of input states in place.
struct StateView {
  std::vector<Field*> fields;

  [[nodiscard]] int numSlots() const { return static_cast<int>(fields.size()); }
  [[nodiscard]] Field& operator[](int i) { return *fields[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Field& operator[](int i) const {
    return *fields[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Field& slot(int i) const { return *fields[static_cast<std::size_t>(i)]; }
};

class StateVector {
 public:
  /// Reserved slot name for the EM field.
  static constexpr const char* kEmSlot = "em";

  StateVector() = default;

  /// Append a slot; returns its index. Names must be unique.
  int addSlot(std::string name, Field field);

  [[nodiscard]] int numSlots() const { return static_cast<int>(fields_.size()); }
  [[nodiscard]] const std::string& slotName(int i) const {
    return names_[static_cast<std::size_t>(i)];
  }
  /// Index of a named slot, or -1 if absent.
  [[nodiscard]] int indexOf(const std::string& name) const;

  [[nodiscard]] Field& slot(int i) { return fields_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Field& slot(int i) const { return fields_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] Field& slot(const std::string& name);
  [[nodiscard]] const Field& slot(const std::string& name) const;

  /// View aliasing every slot (valid until slots are added or the vector
  /// is destroyed/moved).
  [[nodiscard]] StateView view();

  /// A StateVector with the same slot names/shapes, zero-initialized.
  [[nodiscard]] StateVector zerosLike() const;

  // Vector-space operations, applied slot-by-slot (shapes must match).
  void setZero();
  void copyFrom(const StateVector& other);
  /// this += a * other.
  void axpy(double a, const StateVector& other);
  /// this = a*x + b*y.
  void combine(double a, const StateVector& x, double b, const StateVector& y);

 private:
  std::vector<std::string> names_;
  std::vector<Field> fields_;
};

}  // namespace vdg
