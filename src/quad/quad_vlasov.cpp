#include "quad/quad_vlasov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "math/gauss_legendre.hpp"

namespace vdg {

namespace {

template <typename Fn>
void forEachIdx(int nd, const int* hi, Fn fn) {
  MultiIndex idx;
  while (true) {
    fn(idx);
    int d = 0;
    while (d < nd) {
      if (++idx[d] < hi[d]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == nd) break;
  }
}

}  // namespace

QuadVlasovUpdater::QuadVlasovUpdater(const BasisSpec& spec, const Grid& phaseGrid,
                                     const VlasovParams& params)
    : ks_(&vlasovKernels(spec)), grid_(phaseGrid), params_(params) {
  if (phaseGrid.ndim != spec.ndim())
    throw std::invalid_argument("QuadVlasovUpdater: grid/basis dimensionality mismatch");
  const Basis& basis = *ks_->phase;
  np_ = basis.numModes();
  ndim_ = spec.ndim();
  cdim_ = spec.cdim;
  vdim_ = spec.vdim;
  // Just enough points to integrate the quadratic nonlinearity exactly:
  // degree(dw_l) + degree(alpha) + degree(f) <= 3p + 1 per direction.
  nq1_ = (3 * spec.polyOrder + 2 + 1) / 2;
  const QuadRule rule = gauss_legendre(nq1_);

  // ------------------------------------------------------ volume matrices
  nq_ = 1;
  for (int d = 0; d < ndim_; ++d) nq_ *= nq1_;
  interp_ = DenseMatrix(nq_, np_);
  gradProj_.assign(static_cast<std::size_t>(ndim_), DenseMatrix(np_, nq_));
  volNodes_.assign(static_cast<std::size_t>(nq_), std::vector<double>(static_cast<std::size_t>(ndim_)));
  {
    std::vector<int> id(static_cast<std::size_t>(ndim_), 0);
    for (int q = 0; q < nq_; ++q) {
      double wq = 1.0;
      for (int d = 0; d < ndim_; ++d) {
        volNodes_[static_cast<std::size_t>(q)][static_cast<std::size_t>(d)] =
            rule.nodes[static_cast<std::size_t>(id[static_cast<std::size_t>(d)])];
        wq *= rule.weights[static_cast<std::size_t>(id[static_cast<std::size_t>(d)])];
      }
      const double* eta = volNodes_[static_cast<std::size_t>(q)].data();
      for (int l = 0; l < np_; ++l) {
        interp_(q, l) = basis.evalMode(l, eta);
        for (int d = 0; d < ndim_; ++d)
          gradProj_[static_cast<std::size_t>(d)](l, q) = wq * basis.evalModeDeriv(l, d, eta);
      }
      for (int d = 0; d < ndim_; ++d) {
        if (++id[static_cast<std::size_t>(d)] < nq1_) break;
        id[static_cast<std::size_t>(d)] = 0;
      }
    }
  }

  // ------------------------------------------------------- face matrices
  nqf_ = 1;
  for (int d = 0; d < ndim_ - 1; ++d) nqf_ *= nq1_;
  faceInterpL_.assign(static_cast<std::size_t>(ndim_), DenseMatrix(nqf_, np_));
  faceInterpR_.assign(static_cast<std::size_t>(ndim_), DenseMatrix(nqf_, np_));
  faceLiftL_.assign(static_cast<std::size_t>(ndim_), DenseMatrix(np_, nqf_));
  faceLiftR_.assign(static_cast<std::size_t>(ndim_), DenseMatrix(np_, nqf_));
  faceNodes_.assign(static_cast<std::size_t>(ndim_), {});
  for (int d = 0; d < ndim_; ++d) {
    auto& nodes = faceNodes_[static_cast<std::size_t>(d)];
    nodes.assign(static_cast<std::size_t>(nqf_) * (ndim_ - 1), 0.0);
    std::vector<int> id(static_cast<std::size_t>(ndim_ - 1), 0);
    std::vector<double> eta(static_cast<std::size_t>(ndim_));
    for (int q = 0; q < nqf_; ++q) {
      double wq = 1.0;
      for (int i = 0; i < ndim_ - 1; ++i) {
        nodes[static_cast<std::size_t>(q) * (ndim_ - 1) + i] =
            rule.nodes[static_cast<std::size_t>(id[static_cast<std::size_t>(i)])];
        wq *= rule.weights[static_cast<std::size_t>(id[static_cast<std::size_t>(i)])];
      }
      // Insert the face coordinate at dimension d.
      for (int side = 0; side < 2; ++side) {
        int j = 0;
        for (int i = 0; i < ndim_; ++i)
          eta[static_cast<std::size_t>(i)] =
              (i == d) ? (side ? +1.0 : -1.0)
                       : nodes[static_cast<std::size_t>(q) * (ndim_ - 1) + j++];
        for (int l = 0; l < np_; ++l) {
          const double v = basis.evalMode(l, eta.data());
          if (side) {  // eta_d = +1: trace of the left cell
            faceInterpL_[static_cast<std::size_t>(d)](q, l) = v;
            faceLiftL_[static_cast<std::size_t>(d)](l, q) = wq * v;
          } else {  // eta_d = -1: trace of the right cell
            faceInterpR_[static_cast<std::size_t>(d)](q, l) = v;
            faceLiftR_[static_cast<std::size_t>(d)](l, q) = wq * v;
          }
        }
      }
      for (int i = 0; i < ndim_ - 1; ++i) {
        if (++id[static_cast<std::size_t>(i)] < nq1_) break;
        id[static_cast<std::size_t>(i)] = 0;
      }
    }
  }
}

std::size_t QuadVlasovUpdater::updateMultiplyCount() const {
  // Dense mat-vec entries touched per cell per forward-Euler update.
  std::size_t n = interp_.entryCount();  // f -> quadrature points
  for (int d = 0; d < ndim_; ++d) {
    n += gradProj_[static_cast<std::size_t>(d)].entryCount();
    n += static_cast<std::size_t>(nq_);  // pointwise alpha*f
    if (d >= cdim_) n += interp_.entryCount();  // alpha -> points
    // Faces: one product per face, shared between two cells; two trace
    // interpolations + two lifts + pointwise work.
    n += faceInterpL_[static_cast<std::size_t>(d)].entryCount() +
         faceInterpR_[static_cast<std::size_t>(d)].entryCount();
    n += faceLiftL_[static_cast<std::size_t>(d)].entryCount() +
         faceLiftR_[static_cast<std::size_t>(d)].entryCount();
    if (d >= cdim_)
      n += faceInterpL_[static_cast<std::size_t>(d)].entryCount() +
           faceInterpR_[static_cast<std::size_t>(d)].entryCount();
    n += static_cast<std::size_t>(3 * nqf_);
  }
  return n;
}

double QuadVlasovUpdater::advance(const Field& f, const Field* em, Field& rhs) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = np_;
  assert(f.ncomp() == np && rhs.ncomp() == np);
  rhs.setZero();
  double maxFreq = 0.0;
  const double qbym = params_.charge / params_.mass;

  Field alphaField;
  if (em) alphaField = Field(grid_, vdim_ * np, 0);
  AccelWorkspace ws;

  int confHi[kMaxDim], velHi[kMaxDim];
  for (int d = 0; d < cdim_; ++d) confHi[d] = grid_.cells[static_cast<std::size_t>(d)];
  for (int j = 0; j < vdim_; ++j) velHi[j] = grid_.cells[static_cast<std::size_t>(cdim_ + j)];

  std::vector<double> fq(static_cast<std::size_t>(nq_)), gq(static_cast<std::size_t>(nq_));
  std::vector<double> aq(static_cast<std::size_t>(nq_));
  std::vector<double> alpha(static_cast<std::size_t>(vdim_) * np);

  // ---------------------------------------------------------------- volume
  forEachIdx(cdim_, confHi, [&](const MultiIndex& cidx) {
    if (em) prepareAccel(ks, em->at(cidx), ws);
    forEachIdx(vdim_, velHi, [&](const MultiIndex& vidx) {
      MultiIndex idx = cidx;
      for (int j = 0; j < vdim_; ++j) idx[cdim_ + j] = vidx[j];
      const std::span<const double> fc = f.cell(idx);
      const std::span<double> rc = rhs.cell(idx);

      interp_.matvec(fc, fq);
      double freq = 0.0;

      // Streaming: alpha at a quadrature point is the v_d coordinate value.
      for (int d = 0; d < cdim_; ++d) {
        const int vd = cdim_ + d;
        const double wc = grid_.cellCenter(vd, idx[vd]);
        const double hdv = 0.5 * grid_.dx(vd);
        for (int q = 0; q < nq_; ++q)
          gq[static_cast<std::size_t>(q)] =
              (wc + hdv * volNodes_[static_cast<std::size_t>(q)][static_cast<std::size_t>(vd)]) *
              fq[static_cast<std::size_t>(q)];
        const double rdx2 = 2.0 / grid_.dx(d);
        // rhs_l += rdx2 * sum_q w_q dw_l(q) g(q)
        const DenseMatrix& gm = gradProj_[static_cast<std::size_t>(d)];
        for (int l = 0; l < np; ++l) {
          double s = 0.0;
          for (int q = 0; q < nq_; ++q) s += gm(l, q) * gq[static_cast<std::size_t>(q)];
          rc[static_cast<std::size_t>(l)] += rdx2 * s;
        }
        freq += (std::abs(wc) + hdv) / grid_.dx(d);
      }

      // Acceleration: interpolate the projected flux expansion to points.
      if (em) {
        buildAccel(ks, grid_, qbym, idx, ws, alpha);
        std::copy(alpha.begin(), alpha.end(), alphaField.at(idx));
        for (int j = 0; j < vdim_; ++j) {
          const int d = cdim_ + j;
          const std::span<const double> aj(alpha.data() + static_cast<std::size_t>(j) * np,
                                           static_cast<std::size_t>(np));
          interp_.matvec(aj, aq);
          for (int q = 0; q < nq_; ++q)
            gq[static_cast<std::size_t>(q)] =
                aq[static_cast<std::size_t>(q)] * fq[static_cast<std::size_t>(q)];
          const double rdx2 = 2.0 / grid_.dx(d);
          const DenseMatrix& gm = gradProj_[static_cast<std::size_t>(d)];
          for (int l = 0; l < np; ++l) {
            double s = 0.0;
            for (int q = 0; q < nq_; ++q) s += gm(l, q) * gq[static_cast<std::size_t>(q)];
            rc[static_cast<std::size_t>(l)] += rdx2 * s;
          }
          double amax = 0.0;
          for (int l = 0; l < np; ++l)
            amax += std::abs(aj[static_cast<std::size_t>(l)]) *
                    ks.phaseSup[static_cast<std::size_t>(l)];
          freq += amax / grid_.dx(d);
        }
      }
      maxFreq = std::max(maxFreq, freq);
    });
  });

  // --------------------------------------------------------------- surface
  const bool penalty = params_.flux == FluxType::Penalty;
  std::vector<double> fLq(static_cast<std::size_t>(nqf_)), fRq(static_cast<std::size_t>(nqf_));
  std::vector<double> aLq(static_cast<std::size_t>(nqf_)), aRq(static_cast<std::size_t>(nqf_));
  std::vector<double> fhq(static_cast<std::size_t>(nqf_));

  for (int d = 0; d < ndim_; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const bool isConfDir = d < cdim_;
    if (!em && !isConfDir) continue;
    const double rdx2 = 2.0 / grid_.dx(d);
    const FaceMap& fm = ks.faceMap[ds];  // for the penalty bound only
    std::vector<double> supBuf(static_cast<std::size_t>(fm.numFaceModes));

    int hi[kMaxDim];
    for (int i = 0; i < ndim_; ++i) hi[i] = grid_.cells[static_cast<std::size_t>(i)];
    hi[d] += 1;
    forEachIdx(ndim_, hi, [&](const MultiIndex& fidx) {
      const int i = fidx[d];
      const int nd = grid_.cells[ds];
      if (!isConfDir && (i == 0 || i == nd)) return;
      MultiIndex lidx = fidx;
      lidx[d] = i - 1;
      const bool lInterior = i > 0;
      const bool rInterior = i < nd;

      faceInterpL_[ds].matvec(f.cell(lidx), fLq);
      faceInterpR_[ds].matvec(f.cell(fidx), fRq);

      double tau = 0.0;
      if (isConfDir) {
        const int vd = cdim_ + d;
        const double wc = grid_.cellCenter(vd, fidx[vd]);
        const double hdv = 0.5 * grid_.dx(vd);
        const int fvd = vd - 1;  // index of vd among face coordinates (d < vd)
        for (int q = 0; q < nqf_; ++q) {
          const double v =
              wc + hdv * faceNodes_[ds][static_cast<std::size_t>(q) * (ndim_ - 1) + fvd];
          fhq[static_cast<std::size_t>(q)] =
              0.5 * v * (fLq[static_cast<std::size_t>(q)] + fRq[static_cast<std::size_t>(q)]);
        }
        if (penalty) tau = std::max(std::abs(wc - hdv), std::abs(wc + hdv));
      } else {
        const int j = d - cdim_;
        const int off = j * np;
        const std::span<const double> aL(alphaField.at(lidx) + off, static_cast<std::size_t>(np));
        const std::span<const double> aR(alphaField.at(fidx) + off, static_cast<std::size_t>(np));
        faceInterpL_[ds].matvec(aL, aLq);
        faceInterpR_[ds].matvec(aR, aRq);
        for (int q = 0; q < nqf_; ++q)
          fhq[static_cast<std::size_t>(q)] =
              0.5 * (aLq[static_cast<std::size_t>(q)] * fLq[static_cast<std::size_t>(q)] +
                     aRq[static_cast<std::size_t>(q)] * fRq[static_cast<std::size_t>(q)]);
        if (penalty) {
          // Identical bound to the modal path (coefficient-sum sup bound).
          const std::vector<double>& sup = ks.faceSup[ds];
          double bL = 0.0, bR = 0.0;
          fm.restrictTo(aL, supBuf, +1);
          for (int k = 0; k < fm.numFaceModes; ++k)
            bL += std::abs(supBuf[static_cast<std::size_t>(k)]) * sup[static_cast<std::size_t>(k)];
          fm.restrictTo(aR, supBuf, -1);
          for (int k = 0; k < fm.numFaceModes; ++k)
            bR += std::abs(supBuf[static_cast<std::size_t>(k)]) * sup[static_cast<std::size_t>(k)];
          tau = std::max(bL, bR);
        }
      }
      if (penalty && tau > 0.0)
        for (int q = 0; q < nqf_; ++q)
          fhq[static_cast<std::size_t>(q)] -=
              0.5 * tau * (fRq[static_cast<std::size_t>(q)] - fLq[static_cast<std::size_t>(q)]);

      if (lInterior) {
        const std::span<double> rl = rhs.cell(lidx);
        const DenseMatrix& lm = faceLiftL_[ds];
        for (int l = 0; l < np; ++l) {
          double s = 0.0;
          for (int q = 0; q < nqf_; ++q) s += lm(l, q) * fhq[static_cast<std::size_t>(q)];
          rl[static_cast<std::size_t>(l)] -= rdx2 * s;
        }
      }
      if (rInterior) {
        const std::span<double> rr = rhs.cell(fidx);
        const DenseMatrix& lm = faceLiftR_[ds];
        for (int l = 0; l < np; ++l) {
          double s = 0.0;
          for (int q = 0; q < nqf_; ++q) s += lm(l, q) * fhq[static_cast<std::size_t>(q)];
          rr[static_cast<std::size_t>(l)] += rdx2 * s;
        }
      }
    });
  }

  return maxFreq;
}

}  // namespace vdg
