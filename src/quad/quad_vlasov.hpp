#pragma once
// The baseline the paper compares against (Table I): an *alias-free* DG
// Vlasov update evaluated through numerical quadrature and dense matrices,
// the cost structure of the nodal scheme of Juno et al. 2018 with an
// optimized linear-algebra backend (Eigen in the paper; math/dense_matrix
// here). Per cell and per direction the update is
//   interpolate to quadrature points (dense Nq x Np mat-vec)
//   pointwise flux products at the quadrature points
//   project back through the gradient/lift matrices (dense Np x Nq)
// with enough Gauss points per direction, nq = ceil((3p+2)/2), to integrate
// the quadratic nonlinearity exactly, so it produces the *same* alias-free
// right-hand side as the modal tape path (which the tests verify) at
// O(Nq*Np) cost instead of the sparse-tape cost.
//
// To keep the comparison exact, the phase-space flux is expanded in the
// basis exactly as in the modal path (paper Eq. 4) and interpolated to the
// quadrature points.

#include <memory>

#include "dg/vlasov.hpp"
#include "math/dense_matrix.hpp"

namespace vdg {

class QuadVlasovUpdater {
 public:
  QuadVlasovUpdater(const BasisSpec& spec, const Grid& phaseGrid, const VlasovParams& params);

  /// Same contract as VlasovUpdater::advance.
  double advance(const Field& f, const Field* em, Field& rhs) const;

  /// Dense multiplications per cell per forward-Euler update (matrix sizes
  /// summed; the op-count comparator for the modal tape count).
  [[nodiscard]] std::size_t updateMultiplyCount() const;

  [[nodiscard]] int numQuadPerDim() const { return nq1_; }

 private:
  const VlasovKernelSet* ks_;  // reused for flux-expansion machinery only
  Grid grid_;
  VlasovParams params_;
  int np_, nq_, nqf_, ndim_, cdim_, vdim_, nq1_;

  DenseMatrix interp_;                  // Nq x Np: basis values at volume points
  std::vector<DenseMatrix> gradProj_;   // per dim: Np x Nq, rows w_l' * weight
  std::vector<DenseMatrix> faceInterpL_, faceInterpR_;  // per dim: Nqf x Np
  std::vector<DenseMatrix> faceLiftL_, faceLiftR_;      // per dim: Np x Nqf
  std::vector<std::vector<double>> volNodes_;   // Nq x ndim reference coords
  std::vector<std::vector<double>> faceNodes_;  // per dim: Nqf x (ndim-1)

  std::unique_ptr<VlasovUpdater> modalAlpha_;  // shares alpha construction
};

}  // namespace vdg
