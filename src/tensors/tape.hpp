#pragma once
// Sparse "tapes": the runtime representation of the exactly-integrated DG
// tensors. A tape is the flat list of nonzero entries of a tensor such as
// C^d_lmn = \int dw_l/deta_d w_m w_n deta, produced once at setup by the
// symbolic layer (math/ + tensors/) and then executed per cell with plain
// fused multiply-adds: no matrices, no quadrature, no aliasing error.
//
// The multiplication count of a tape execution is its term count times the
// operands per term, which is what the paper's Fig. 1 / Section III op-count
// discussion is about; see tensors/emit.hpp for the generated-source view.

#include <cstddef>
#include <span>
#include <vector>

namespace vdg {

/// Bilinear tape: out[l] += scale * sum c * a[m] * f[n].
struct Tape3 {
  struct Term {
    int l, m, n;
    double c;
  };
  std::vector<Term> terms;

  void execute(std::span<const double> a, std::span<const double> f,
               std::span<double> out, double scale) const {
    for (const Term& t : terms)
      out[static_cast<std::size_t>(t.l)] +=
          scale * t.c * a[static_cast<std::size_t>(t.m)] * f[static_cast<std::size_t>(t.n)];
  }

  /// Multiplications per execution (3 per term: c*a, *f, *scale folded in 2
  /// if scale premultiplied; we report 2 per term as the paper counts the
  /// inner products with constants folded).
  [[nodiscard]] std::size_t multiplyCount() const { return terms.size() * 2; }
};

/// Linear tape: out[l] += scale * sum c * in[n].
struct Tape2 {
  struct Term {
    int l, n;
    double c;
  };
  std::vector<Term> terms;

  void execute(std::span<const double> in, std::span<double> out, double scale) const {
    for (const Term& t : terms)
      out[static_cast<std::size_t>(t.l)] += scale * t.c * in[static_cast<std::size_t>(t.n)];
  }

  void executeSet(std::span<const double> in, std::span<double> out, double scale) const {
    for (double& v : out) v = 0.0;
    execute(in, out, scale);
  }

  [[nodiscard]] std::size_t multiplyCount() const { return terms.size(); }
};

}  // namespace vdg
