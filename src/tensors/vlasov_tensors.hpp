#pragma once
// The complete pre-generated kernel set for the Vlasov (collisionless
// Boltzmann) equation in a given phase-space basis: volume tensors per
// direction, face trace/lift maps, face product (Gaunt) tensors and the
// sparse machinery for assembling the phase-space flux expansion
//   alpha_h = ( v,  (q/m) (E_h + v x B_h) )
// from the cell geometry and the configuration-space EM coefficients.
//
// This structure is the runtime analogue of the paper's Maxima-generated
// C++ kernels: it is computed once per (dimensionality, order, family)
// combination and then drives a matrix-free, quadrature-free per-cell
// update.

#include <span>
#include <vector>

#include "basis/basis.hpp"
#include "grid/grid.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

struct VlasovKernelSet {
  BasisSpec spec;
  const Basis* phase = nullptr;  ///< phase-space basis (cdim + vdim dims)
  const Basis* conf = nullptr;   ///< configuration-space basis (cdim dims)

  int cdim = 0, vdim = 0, ndim = 0;
  int numPhaseModes = 0, numConfModes = 0;

  /// Volume tensors C^d_lmn, one per phase-space direction d (Eq. 10).
  std::vector<Tape3> volume;

  /// Per-direction face bases, trace/lift maps and face Gaunt tensors.
  std::vector<Basis> faceBasis;
  std::vector<FaceMap> faceMap;
  std::vector<Tape3> faceProduct;

  /// sup |phi_k| per face mode (penalty-flux speed bound), per direction.
  std::vector<std::vector<double>> faceSup;

  /// sup |w_l| per phase mode (CFL speed bound).
  std::vector<double> phaseSup;

  /// Projection of 1 and of eta_d onto the phase basis (streaming flux
  /// v_d = wc + (dxv/2) eta_d has exactly these two components).
  std::vector<std::pair<int, double>> unitProj;
  std::vector<std::vector<std::pair<int, double>>> etaProj;  // per phase dim

  /// Embedding of a configuration-space expansion into the phase basis:
  /// conf mode k maps to phase mode embedIdx[k] with factor embedFac.
  std::vector<int> embedIdx;
  double embedFac = 1.0;

  /// Projection of eta_{v_j} * g onto the phase basis, per velocity dim j
  /// (used to build the v x B part of the acceleration exactly, then
  /// projected onto the basis as in the paper's Eq. 4/10).
  std::vector<Tape2> etaMul;

  /// Streaming kernels for configuration direction d < cdim: the flux
  /// v_d = wc + (dxv/2) eta has exactly two modal components, so the
  /// Tape3 contraction folds at setup into two linear tapes executed with
  /// runtime weights wc and dxv/2 (this is the shape of the paper's Fig. 1
  /// kernel, where the cell center and spacing multiply fixed constants).
  std::vector<Tape2> streamVol0, streamVol1;    // per config dir
  std::vector<Tape2> streamFace0, streamFace1;  // per config dir, face basis

  /// Total multiplications of one full volume+surface update (op-count
  /// accounting for the Fig. 1 / Section III comparison).
  [[nodiscard]] std::size_t updateMultiplyCount() const;
};

/// Cached, thread-safe access to the kernel set for a spec (built on first
/// use; bases must have vdim >= 1 and polyOrder >= 1).
const VlasovKernelSet& vlasovKernels(const BasisSpec& spec);

/// Scratch for assembling the acceleration expansion; reusable across cells.
struct AccelWorkspace {
  std::vector<double> embE;  ///< 3 * numPhaseModes
  std::vector<double> embB;  ///< 3 * numPhaseModes
  std::vector<double> mulB;  ///< vdim * 3 * numPhaseModes: etaMul_j(embB_b)
};

/// Per-configuration-cell preparation shared by all velocity cells: embed
/// the E and B configuration expansions into the phase basis and pre-apply
/// the eta-multiplication tapes. `emCell` points at the kEmComps (=8)
/// configuration expansions of the cell.
void prepareAccel(const VlasovKernelSet& ks, const double* emCell, AccelWorkspace& ws);

/// Assemble alpha_j = (q/m)(E + v x B)_j, j < vdim, projected onto the
/// phase basis (paper Eq. 4/10), for the phase cell `idx` of `grid`.
/// `alpha` has vdim * numPhaseModes entries.
void buildAccel(const VlasovKernelSet& ks, const Grid& grid, double qbym,
                const MultiIndex& idx, const AccelWorkspace& ws, std::span<double> alpha);

}  // namespace vdg
