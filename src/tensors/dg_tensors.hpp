#pragma once
// Exact construction of the sparse DG tensors (volume, surface, products,
// embeddings) for any modal orthonormal basis. This is the reproduction of
// the paper's Maxima-generated kernels: every entry below is an analytically
// exact integral — it factorizes into the 1-D tables of math/legendre.hpp —
// so the resulting scheme is alias-free; the sparse-tape representation
// makes it matrix-free and quadrature-free at runtime.

#include <utility>
#include <vector>

#include "basis/basis.hpp"
#include "tensors/tape.hpp"

namespace vdg {

/// Diagonal trace/lift map between a volume basis and the face basis of
/// direction d: w_l restricted to the face eta_d = s equals
/// psi_{a_d}(s) * phi_{k(l)} for exactly one face mode k(l).
struct FaceMap {
  struct Entry {
    int vol;         ///< volume mode index l
    int face;        ///< face mode index k(l)
    double atMinus;  ///< psi_{a_d}(-1)
    double atPlus;   ///< psi_{a_d}(+1)
  };
  std::vector<Entry> entries;  // one per volume mode
  int numFaceModes = 0;

  /// Face expansion of the trace of `vol` at side s (+1: upper face of the
  /// cell, -1: lower face). `face` must be zero-initialized or overwritten.
  void restrictTo(std::span<const double> vol, std::span<double> face, int s) const {
    for (double& v : face) v = 0.0;
    for (const Entry& e : entries)
      face[static_cast<std::size_t>(e.face)] +=
          (s > 0 ? e.atPlus : e.atMinus) * vol[static_cast<std::size_t>(e.vol)];
  }

  /// out_l += scale * psi_{a_d}(s) * face_{k(l)} — the (diagonal) surface
  /// lift: \oint w_l Fhat over the reference face.
  void lift(std::span<const double> face, std::span<double> out, int s, double scale) const {
    for (const Entry& e : entries)
      out[static_cast<std::size_t>(e.vol)] +=
          scale * (s > 0 ? e.atPlus : e.atMinus) * face[static_cast<std::size_t>(e.face)];
  }
};

/// C^d_lmn = \int dw_l/deta_d * w_m * w_n deta over [-1,1]^ndim (Eq. 10).
[[nodiscard]] Tape3 buildVolumeTape(const Basis& basis, int d);

/// Second-derivative volume tensor \int d2w_l/deta_d^2 * w_m * w_n deta —
/// the volume term of the twice-integrated-by-parts (recovery) diffusion
/// weak form, with the diffusion coefficient expansion in the m slot.
[[nodiscard]] Tape3 buildVolumeTape2(const Basis& basis, int d);

/// Face Gaunt tensor G_kmn = \int phi_k phi_m phi_n over the reference face:
/// exact projection of a product of two face expansions onto the face basis.
[[nodiscard]] Tape3 buildProductTape(const Basis& basis);

/// Trace/lift map for direction d (see FaceMap).
[[nodiscard]] FaceMap buildFaceMap(const Basis& basis, const Basis& face, int d);

/// Trace/lift map for a 1-D basis, whose faces are points: the "face
/// expansion" is the single trace value (face basis = the constant 1).
[[nodiscard]] FaceMap buildPointFaceMap(const Basis& basis);

/// D^d_ln = \int dw_l/deta_d * w_n deta (volume tape of a linear flux, used
/// by the Maxwell solver).
[[nodiscard]] Tape2 buildGradTape(const Basis& basis, int d);

/// Projection of eta_d * g onto the basis: out_l = \int w_l eta_d g deta.
[[nodiscard]] Tape2 buildEtaMulTape(const Basis& basis, int d);

/// Projection of eta_d^2 * g onto the basis (exact, not etaMul applied
/// twice — re-projecting between multiplications would alias). Used for
/// the |v|^2-weighted fields of the collision conservation correction.
[[nodiscard]] Tape2 buildEta2MulTape(const Basis& basis, int d);

/// Projection of the constant 1 onto the basis: list of (mode, coeff).
[[nodiscard]] std::vector<std::pair<int, double>> projectUnit(const Basis& basis);

/// Projection of the coordinate eta_d onto the basis.
[[nodiscard]] std::vector<std::pair<int, double>> projectEta(const Basis& basis, int d);

/// sup_{eta in face} |phi_k(eta)| for each face mode (used for the local
/// Lax-Friedrichs penalty bound): prod_i sqrt((2 a_i + 1)/2).
[[nodiscard]] std::vector<double> basisSupBounds(const Basis& basis);

/// Recovery functionals of the two-cell patch: the unique degree-(2p+1)
/// polynomial r(zeta) on [-1,1] (interface at zeta = 0, left cell mapped to
/// [-1,0], right cell to [0,1]) reproducing the p+1 Legendre moments of each
/// neighbor. Its interface value r(0) and slope r'(0) are linear in the two
/// cells' 1-D slice coefficients; the weights are the first two rows of the
/// inverse of the moment-condition matrix. Shared by the recovery-based
/// diffusion of the LBO collision operator (velocity faces) and the Poisson
/// solver's continuous interface traces (configuration faces).
struct RecoveryWeights {
  std::vector<double> valL, valR;      ///< r(0)  weights, size p+1 each
  std::vector<double> derivL, derivR;  ///< r'(0) weights (d/dzeta), size p+1
};
[[nodiscard]] RecoveryWeights buildRecoveryWeights(int polyOrder);

/// One-sided recovery functionals at a *domain boundary* face, where the
/// two-cell patch of buildRecoveryWeights has no second cell: the unique
/// degree-(p+1) polynomial r(eta) on the boundary cell [-1,1] reproducing
/// the cell's p+1 Legendre moments plus one wall constraint at eta = side —
/// the value r(side) = ghat (Dirichlet) or slope r'(side) = ghat (Neumann,
/// ghat in reference units: d/deta). Wall value and slope are then affine
/// in the cell's slice coefficients c and the datum:
///   r(side)  = sum_m val[m]   c_m + valG   * ghat,
///   r'(side) = sum_m deriv[m] c_m + derivG * ghat.
/// A Dirichlet constraint makes (val, valG) trivially (0, 1) and a Neumann
/// one (deriv, derivG) = (0, 1); the other pair carries the recovered
/// estimate. Used by the non-periodic PoissonSolver wall closures.
struct BoundaryRecoveryWeights {
  std::vector<double> val, deriv;  ///< weights on the p+1 slice coefficients
  double valG = 0.0, derivG = 0.0;  ///< weight on the boundary datum ghat
};
[[nodiscard]] BoundaryRecoveryWeights buildBoundaryRecoveryWeights(int polyOrder, int side,
                                                                   bool dirichlet);

}  // namespace vdg
