#pragma once
// C++ kernel source emission — the paper's central software methodology
// (Fig. 1, Section IV): Gkeyll pre-generates its per-cell update kernels
// with the Maxima CAS; less than 8% of the code is hand-written. Here the
// symbolic tensor layer plays the CAS role and this module renders the
// sparse tapes as standalone, fully unrolled C++ functions with all
// constants folded to double precision:
//
//   - volume streaming kernel   (Fig. 1: inputs w, dxv, f -> out)
//   - volume acceleration kernel (inputs dxv, alpha, f -> out)
//   - surface streaming kernel, one per configuration direction
//     (inputs w, dxv, f_left, f_right -> increments to both cells)
//   - surface acceleration kernel, one per velocity direction
//     (inputs dxv, alpha_left/right, f_left/right -> both cells)
//
// tools/gen_kernels renders whole kernel sets into src/kernels/gen/, which
// are compiled into the library and dispatched through kernels/registry.hpp
// (the solver falls back to tape execution for specs without generated
// kernels). Tests assert generated == tape to machine precision.

#include <cstddef>
#include <string>

#include "basis/basis.hpp"

namespace vdg {

struct EmittedKernel {
  std::string source;  ///< compilable C++ function definition
  std::string functionName;
  std::size_t multiplies = 0;  ///< multiplications in the emitted body
  std::size_t adds = 0;
};

/// Every emitter below renders a scalar (one-cell) kernel by default.
/// With `batched = true` it renders the SIMD-batched AoSoA variant
/// instead: a `template <int B>` function whose body wraps the same
/// contraction in an inner lane loop over a block of B cells laid out
/// mode-major, lane-minor (element i of lane b at [i*B+b]), with
/// __restrict pointer parameters so the compiler autovectorizes across
/// cells. Per lane the floating-point operation order is identical to the
/// scalar kernel, keeping the batched path bitwise reproducible.

/// Volume streaming kernel: the exact DG volume integral of div_x (v f)
/// over all configuration directions (the paper's Fig. 1 kernel shape).
///   void f(const double* w, const double* dxv, const double* f, double* out)
[[nodiscard]] EmittedKernel emitStreamingVolumeKernel(const BasisSpec& spec,
                                                     bool batched = false);

/// Volume acceleration kernel: div_v (alpha f) over all velocity
/// directions; `alpha` is the per-cell flux expansion (vdim * Np).
///   void f(const double* dxv, const double* alpha, const double* f, double* out)
[[nodiscard]] EmittedKernel emitAccelVolumeKernel(const BasisSpec& spec, bool batched = false);

/// Surface streaming kernel for configuration direction `dir`: evaluates
/// the penalty (local Lax-Friedrichs) numerical flux on the shared face of
/// a left/right cell pair and lifts it into both cells.
///   void f(const double* w, const double* dxv,
///          const double* fl, const double* fr, double* outl, double* outr)
[[nodiscard]] EmittedKernel emitStreamingSurfaceKernel(const BasisSpec& spec, int dir,
                                                      bool batched = false);

/// Surface acceleration kernel for velocity direction `j` (phase dir
/// cdim + j), with per-side flux expansions as in paper Eq. 5.
///   void f(const double* dxv, const double* al, const double* ar,
///          const double* fl, const double* fr, double* outl, double* outr)
[[nodiscard]] EmittedKernel emitAccelSurfaceKernel(const BasisSpec& spec, int j,
                                                  bool batched = false);

/// Render the complete translation unit (all kernels above + registry
/// registration) for one spec. This is what tools/gen_kernels writes into
/// src/kernels/gen/.
[[nodiscard]] std::string emitKernelTranslationUnit(const BasisSpec& spec);

/// Render the sibling SIMD-batched translation unit (vlasov_<spec>_batch.cpp):
/// `template <int B>` AoSoA variants of every kernel above, instantiated
/// and registered for each kKernelBatchLanes entry via
/// registerBatchedKernels(). Compiled with the VDG_KERNEL_SIMD flags.
[[nodiscard]] std::string emitBatchedKernelTranslationUnit(const BasisSpec& spec);

}  // namespace vdg
