#include "tensors/vlasov_tensors.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

namespace vdg {

namespace {

VlasovKernelSet build(const BasisSpec& spec) {
  if (spec.vdim < 1) throw std::invalid_argument("vlasovKernels: vdim must be >= 1");
  if (spec.polyOrder < 1) throw std::invalid_argument("vlasovKernels: polyOrder must be >= 1");

  VlasovKernelSet ks;
  ks.spec = spec;
  ks.phase = &basisFor(spec);
  ks.conf = &basisFor(spec.configSpec());
  ks.cdim = spec.cdim;
  ks.vdim = spec.vdim;
  ks.ndim = spec.ndim();
  ks.numPhaseModes = ks.phase->numModes();
  ks.numConfModes = ks.conf->numModes();

  const Basis& phase = *ks.phase;
  for (int d = 0; d < ks.ndim; ++d) {
    ks.volume.push_back(buildVolumeTape(phase, d));
    ks.faceBasis.push_back(phase.faceBasis(d));
    const Basis& face = ks.faceBasis.back();
    ks.faceMap.push_back(buildFaceMap(phase, face, d));
    ks.faceProduct.push_back(buildProductTape(face));
    ks.faceSup.push_back(basisSupBounds(face));
    ks.etaProj.push_back(projectEta(phase, d));
  }
  ks.unitProj = projectUnit(phase);
  ks.phaseSup = basisSupBounds(phase);

  // Config -> phase embedding: conf mode with multi-index a maps to the
  // phase mode (a, 0) scaled by 2^{vdim/2} (the velocity-direction
  // normalization of the constant).
  ks.embedFac = std::pow(2.0, 0.5 * ks.vdim);
  ks.embedIdx.resize(static_cast<std::size_t>(ks.numConfModes));
  for (int k = 0; k < ks.numConfModes; ++k) {
    MultiIndex a;  // zero-padded into phase dims
    const MultiIndex& ac = ks.conf->mode(k);
    for (int i = 0; i < ks.cdim; ++i) a[i] = ac[i];
    const int l = phase.indexOf(a);
    if (l < 0)
      throw std::logic_error("vlasovKernels: config mode missing from phase basis");
    ks.embedIdx[static_cast<std::size_t>(k)] = l;
  }

  for (int j = 0; j < ks.vdim; ++j)
    ks.etaMul.push_back(buildEtaMulTape(phase, ks.cdim + j));

  // Fold the 2-component streaming flux into the volume/surface tensors.
  // Config direction d advects with velocity coordinate vd = cdim + d.
  if (spec.vdim < spec.cdim)
    throw std::invalid_argument("vlasovKernels: vdim must be >= cdim");
  const auto contract = [](const Tape3& t, const std::vector<std::pair<int, double>>& proj) {
    Tape2 out;
    for (const Tape3::Term& term : t.terms)
      for (const auto& [m, c] : proj)
        if (term.m == m) out.terms.push_back({term.l, term.n, term.c * c});
    return out;
  };
  for (int d = 0; d < ks.cdim; ++d) {
    const int vd = ks.cdim + d;
    ks.streamVol0.push_back(contract(ks.volume[static_cast<std::size_t>(d)], ks.unitProj));
    ks.streamVol1.push_back(
        contract(ks.volume[static_cast<std::size_t>(d)], ks.etaProj[static_cast<std::size_t>(vd)]));
    const Basis& face = ks.faceBasis[static_cast<std::size_t>(d)];
    // Dropping config dim d (d < vd) shifts the velocity coordinate's index
    // down by one on the face.
    ks.streamFace0.push_back(
        contract(ks.faceProduct[static_cast<std::size_t>(d)], projectUnit(face)));
    ks.streamFace1.push_back(
        contract(ks.faceProduct[static_cast<std::size_t>(d)], projectEta(face, vd - 1)));
  }

  return ks;
}

}  // namespace

std::size_t VlasovKernelSet::updateMultiplyCount() const {
  // Per-cell multiplications of one forward-Euler update: folded streaming
  // tapes in configuration directions, full bilinear tapes in acceleration
  // directions; per direction one face-product execution (each face is
  // shared between two cells) plus two trace restrictions and two lifts.
  std::size_t n = 0;
  for (int d = 0; d < ndim; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    if (d < cdim) {
      n += streamVol0[ds].multiplyCount() + streamVol1[ds].multiplyCount();
      n += streamFace0[ds].multiplyCount() + streamFace1[ds].multiplyCount();
    } else {
      n += volume[ds].multiplyCount();
      n += faceProduct[ds].multiplyCount();
    }
    n += 4 * faceMap[ds].entries.size();
  }
  return n;
}

namespace {
int levi3(int i, int j, int k) {
  if (i == j || j == k || i == k) return 0;
  return ((j - i + 3) % 3 == 1) ? 1 : -1;
}
}  // namespace

void prepareAccel(const VlasovKernelSet& ks, const double* emCell, AccelWorkspace& ws) {
  const int np = ks.numPhaseModes;
  const int npc = ks.numConfModes;
  ws.embE.assign(static_cast<std::size_t>(3 * np), 0.0);
  ws.embB.assign(static_cast<std::size_t>(3 * np), 0.0);
  ws.mulB.assign(static_cast<std::size_t>(ks.vdim) * 3 * np, 0.0);
  for (int c = 0; c < 3; ++c) {
    for (int k = 0; k < npc; ++k) {
      const int l = ks.embedIdx[static_cast<std::size_t>(k)];
      ws.embE[static_cast<std::size_t>(c) * np + l] = ks.embedFac * emCell[c * npc + k];
      ws.embB[static_cast<std::size_t>(c) * np + l] = ks.embedFac * emCell[(3 + c) * npc + k];
    }
  }
  for (int j = 0; j < ks.vdim; ++j)
    for (int b = 0; b < 3; ++b)
      ks.etaMul[static_cast<std::size_t>(j)].executeSet(
          {ws.embB.data() + static_cast<std::size_t>(b) * np, static_cast<std::size_t>(np)},
          {ws.mulB.data() + (static_cast<std::size_t>(j) * 3 + static_cast<std::size_t>(b)) * np,
           static_cast<std::size_t>(np)},
          1.0);
}

void buildAccel(const VlasovKernelSet& ks, const Grid& grid, double qbym, const MultiIndex& idx,
                const AccelWorkspace& ws, std::span<double> alpha) {
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, vdim = ks.vdim;
  for (int j = 0; j < vdim; ++j) {
    double* aj = alpha.data() + static_cast<std::size_t>(j) * np;
    const double* ej = ws.embE.data() + static_cast<std::size_t>(j) * np;
    for (int l = 0; l < np; ++l) aj[l] = ej[l];
    for (int k = 0; k < vdim; ++k) {
      const int vk = cdim + k;
      const double wc = grid.cellCenter(vk, idx[vk]);
      const double hdv = 0.5 * grid.dx(vk);
      for (int b = 0; b < 3; ++b) {
        const int s = levi3(j, k, b);
        if (s == 0) continue;
        const double* bb = ws.embB.data() + static_cast<std::size_t>(b) * np;
        const double* mb = ws.mulB.data() +
                           (static_cast<std::size_t>(k) * 3 + static_cast<std::size_t>(b)) * np;
        for (int l = 0; l < np; ++l) aj[l] += s * (wc * bb[l] + hdv * mb[l]);
      }
    }
    for (int l = 0; l < np; ++l) aj[l] *= qbym;
  }
}

const VlasovKernelSet& vlasovKernels(const BasisSpec& spec) {
  using Key = std::tuple<int, int, int, int>;
  static std::mutex mtx;
  static std::map<Key, VlasovKernelSet> cache;
  const Key key{spec.cdim, spec.vdim, spec.polyOrder, static_cast<int>(spec.family)};
  std::scoped_lock lock(mtx);
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, build(spec)).first;
  return it->second;
}

}  // namespace vdg
