#include "tensors/dg_tensors.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "math/dense_matrix.hpp"
#include "math/gauss_legendre.hpp"
#include "math/legendre.hpp"

namespace vdg {

namespace {

constexpr double kZeroTol = 1e-14;

/// \int psi_a'' psi_b psi_c dx, exactly (Gauss-Legendre on polynomials).
/// psi_a'' at interior nodes via the Legendre ODE
/// (1-x^2) P'' = 2x P' - a(a+1) P.
double d2trip(int a, int b, int c) {
  if (a < 2) return 0.0;
  const int p = std::max(a, std::max(b, c));
  const QuadRule rule = gauss_legendre(2 * p + 2);
  const double norm = std::sqrt((2.0 * a + 1.0) / 2.0);
  double s = 0.0;
  for (std::size_t q = 0; q < rule.nodes.size(); ++q) {
    const double x = rule.nodes[q];
    const double d2 =
        norm * (2.0 * x * legendrePDeriv(a, x) - a * (a + 1.0) * legendreP(a, x)) /
        (1.0 - x * x);
    s += rule.weights[q] * d2 * legendrePsi(b, x) * legendrePsi(c, x);
  }
  return s;
}

/// Enumerate, for a fixed pair of modes (a, b), all member modes c of the
/// basis for which the per-dimension factor product is nonzero, calling
/// emit(nIndex, product). `factor(i, ci)` supplies the 1-D factor for
/// dimension i and candidate degree ci in [0, maxDeg].
template <typename FactorFn, typename EmitFn>
void forEachNonzeroTriple(const Basis& basis, int maxDeg, FactorFn factor, EmitFn emit) {
  const int nd = basis.ndim();
  // Collect admissible (ci, factor) lists per dimension.
  std::array<std::vector<std::pair<int, double>>, kMaxDim> cand;
  for (int i = 0; i < nd; ++i) {
    for (int ci = 0; ci <= maxDeg; ++ci) {
      const double f = factor(i, ci);
      if (std::abs(f) > kZeroTol) cand[static_cast<std::size_t>(i)].emplace_back(ci, f);
    }
    if (cand[static_cast<std::size_t>(i)].empty()) return;
  }
  // Odometer over the cartesian product.
  std::array<std::size_t, kMaxDim> pos{};
  while (true) {
    MultiIndex c;
    double prod = 1.0;
    for (int i = 0; i < nd; ++i) {
      const auto& [ci, f] = cand[static_cast<std::size_t>(i)][pos[static_cast<std::size_t>(i)]];
      c[i] = ci;
      prod *= f;
    }
    const int n = basis.indexOf(c);
    if (n >= 0 && std::abs(prod) > kZeroTol) emit(n, prod);
    int k = 0;
    while (k < nd) {
      auto& p = pos[static_cast<std::size_t>(k)];
      if (++p < cand[static_cast<std::size_t>(k)].size()) break;
      p = 0;
      ++k;
    }
    if (k == nd) break;
  }
}

}  // namespace

Tape3 buildVolumeTape(const Basis& basis, int d) {
  const auto& tab = LegendreTables::instance();
  const int p = basis.spec().polyOrder;
  Tape3 tape;
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    if (a[d] == 0) continue;  // dw_l/deta_d = 0
    for (int m = 0; m < basis.numModes(); ++m) {
      const MultiIndex& b = basis.mode(m);
      forEachNonzeroTriple(
          basis, p,
          [&](int i, int ci) {
            return i == d ? tab.dtrip(a[i], b[i], ci) : tab.trip(a[i], b[i], ci);
          },
          [&](int n, double c) { tape.terms.push_back({l, m, n, c}); });
    }
  }
  return tape;
}

Tape3 buildVolumeTape2(const Basis& basis, int d) {
  const auto& tab = LegendreTables::instance();
  const int p = basis.spec().polyOrder;
  Tape3 tape;
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    if (a[d] < 2) continue;  // d2 w_l / deta_d^2 = 0
    for (int m = 0; m < basis.numModes(); ++m) {
      const MultiIndex& b = basis.mode(m);
      forEachNonzeroTriple(
          basis, p,
          [&](int i, int ci) {
            return i == d ? d2trip(a[i], b[i], ci) : tab.trip(a[i], b[i], ci);
          },
          [&](int n, double c) { tape.terms.push_back({l, m, n, c}); });
    }
  }
  return tape;
}

Tape3 buildProductTape(const Basis& basis) {
  const auto& tab = LegendreTables::instance();
  const int p = basis.spec().polyOrder;
  Tape3 tape;
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    for (int m = 0; m < basis.numModes(); ++m) {
      const MultiIndex& b = basis.mode(m);
      forEachNonzeroTriple(
          basis, p, [&](int i, int ci) { return tab.trip(a[i], b[i], ci); },
          [&](int n, double c) { tape.terms.push_back({l, m, n, c}); });
    }
  }
  return tape;
}

FaceMap buildPointFaceMap(const Basis& basis) {
  assert(basis.ndim() == 1);
  const auto& tab = LegendreTables::instance();
  FaceMap map;
  map.numFaceModes = 1;
  for (int l = 0; l < basis.numModes(); ++l) {
    const int a = basis.mode(l)[0];
    map.entries.push_back({l, 0, tab.psiEnd(a, -1), tab.psiEnd(a, +1)});
  }
  return map;
}

FaceMap buildFaceMap(const Basis& basis, const Basis& face, int d) {
  const auto& tab = LegendreTables::instance();
  FaceMap map;
  map.numFaceModes = face.numModes();
  map.entries.reserve(static_cast<std::size_t>(basis.numModes()));
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    const int k = face.indexOf(a.dropDim(d, basis.ndim()));
    assert(k >= 0 && "face basis must contain every volume-mode restriction");
    map.entries.push_back({l, k, tab.psiEnd(a[d], -1), tab.psiEnd(a[d], +1)});
  }
  return map;
}

Tape2 buildGradTape(const Basis& basis, int d) {
  const auto& tab = LegendreTables::instance();
  Tape2 tape;
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    if (a[d] == 0) continue;
    for (int n = 0; n < basis.numModes(); ++n) {
      const MultiIndex& c = basis.mode(n);
      bool diag = true;
      for (int i = 0; i < basis.ndim(); ++i)
        if (i != d && a[i] != c[i]) {
          diag = false;
          break;
        }
      if (!diag) continue;
      const double w = tab.dpair(a[d], c[d]);
      if (std::abs(w) > kZeroTol) tape.terms.push_back({l, n, w});
    }
  }
  return tape;
}

Tape2 buildEtaMulTape(const Basis& basis, int d) {
  const auto& tab = LegendreTables::instance();
  // eta = sqrt(2/3) psi_1, so <w_l, eta w_n> = sqrt(2/3) trip(a_d, 1, c_d)
  // when all other degrees match.
  const double s = std::sqrt(2.0 / 3.0);
  Tape2 tape;
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    for (int n = 0; n < basis.numModes(); ++n) {
      const MultiIndex& c = basis.mode(n);
      bool diag = true;
      for (int i = 0; i < basis.ndim(); ++i)
        if (i != d && a[i] != c[i]) {
          diag = false;
          break;
        }
      if (!diag) continue;
      const double w = s * tab.trip(a[d], 1, c[d]);
      if (std::abs(w) > kZeroTol) tape.terms.push_back({l, n, w});
    }
  }
  return tape;
}

Tape2 buildEta2MulTape(const Basis& basis, int d) {
  const auto& tab = LegendreTables::instance();
  // eta^2 = (sqrt(2)/3) psi_0 + (2/3) sqrt(2/5) psi_2, so
  // <w_l, eta^2 w_n> combines trip(a_d, 0, c_d) and trip(a_d, 2, c_d).
  const double s0 = std::sqrt(2.0) / 3.0;
  const double s2 = (2.0 / 3.0) * std::sqrt(2.0 / 5.0);
  Tape2 tape;
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    for (int n = 0; n < basis.numModes(); ++n) {
      const MultiIndex& c = basis.mode(n);
      bool diag = true;
      for (int i = 0; i < basis.ndim(); ++i)
        if (i != d && a[i] != c[i]) {
          diag = false;
          break;
        }
      if (!diag) continue;
      const double w = s0 * tab.trip(a[d], 0, c[d]) + s2 * tab.trip(a[d], 2, c[d]);
      if (std::abs(w) > kZeroTol) tape.terms.push_back({l, n, w});
    }
  }
  return tape;
}

std::vector<std::pair<int, double>> projectUnit(const Basis& basis) {
  // 1 = 2^{ndim/2} w_0 in the orthonormal Legendre-product basis.
  const int l0 = basis.indexOf(MultiIndex{});
  assert(l0 >= 0);
  return {{l0, std::pow(2.0, 0.5 * basis.ndim())}};
}

std::vector<std::pair<int, double>> projectEta(const Basis& basis, int d) {
  MultiIndex a;
  a[d] = 1;
  const int l = basis.indexOf(a);
  assert(l >= 0 && "basis must contain all linear modes (p >= 1)");
  return {{l, std::sqrt(2.0 / 3.0) * std::pow(2.0, 0.5 * (basis.ndim() - 1))}};
}

std::vector<double> basisSupBounds(const Basis& basis) {
  std::vector<double> sup(static_cast<std::size_t>(basis.numModes()));
  for (int l = 0; l < basis.numModes(); ++l) {
    const MultiIndex& a = basis.mode(l);
    double s = 1.0;
    for (int i = 0; i < basis.ndim(); ++i) s *= std::sqrt((2.0 * a[i] + 1.0) / 2.0);
    sup[static_cast<std::size_t>(l)] = s;
  }
  return sup;
}

RecoveryWeights buildRecoveryWeights(int polyOrder) {
  // Moment conditions: for each neighbor cell and slice degree m,
  //   int psi_m(x) r(cell-local zeta(x)) dx = g_m
  // with r a monomial expansion in zeta of degree 2p+1. The weights of the
  // interface value/slope come from the inverse's first two rows (r(0) and
  // r'(0) pick the constant and linear monomial coefficients).
  const int n = polyOrder + 1;
  const int N = 2 * n;
  const QuadRule rule = gauss_legendre(2 * polyOrder + 4);
  DenseMatrix M(N, N);
  for (int m = 0; m < n; ++m) {
    for (int q = 0; q < N; ++q) {
      double sL = 0.0, sR = 0.0;
      for (std::size_t iq = 0; iq < rule.nodes.size(); ++iq) {
        const double x = rule.nodes[iq];
        const double w = rule.weights[iq] * legendrePsi(m, x);
        sL += w * std::pow(0.5 * (x - 1.0), q);
        sR += w * std::pow(0.5 * (x + 1.0), q);
      }
      M(m, q) = sL;
      M(n + m, q) = sR;
    }
  }
  const LuSolver lu(std::move(M));
  assert(!lu.singular());
  RecoveryWeights rw;
  rw.valL.resize(static_cast<std::size_t>(n));
  rw.valR.resize(static_cast<std::size_t>(n));
  rw.derivL.resize(static_cast<std::size_t>(n));
  rw.derivR.resize(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(N));
  for (int col = 0; col < N; ++col) {
    std::fill(e.begin(), e.end(), 0.0);
    e[static_cast<std::size_t>(col)] = 1.0;
    lu.solve(e);
    if (col < n) {
      rw.valL[static_cast<std::size_t>(col)] = e[0];
      rw.derivL[static_cast<std::size_t>(col)] = e[1];
    } else {
      rw.valR[static_cast<std::size_t>(col - n)] = e[0];
      rw.derivR[static_cast<std::size_t>(col - n)] = e[1];
    }
  }
  return rw;
}

BoundaryRecoveryWeights buildBoundaryRecoveryWeights(int polyOrder, int side, bool dirichlet) {
  assert(side == -1 || side == 1);
  // Monomial expansion r(eta) = sum_q x_q eta^q of degree p+1 on the
  // boundary cell. Conditions: the p+1 cell moments
  //   int psi_m(eta) r(eta) deta = c_m,  m = 0..p,
  // plus the wall constraint r(side) = ghat (Dirichlet) or
  // r'(side) = ghat (Neumann). The affine weights of r(side), r'(side)
  // in (c, ghat) come from the columns of the inverse, exactly as in the
  // two-cell buildRecoveryWeights.
  const int n = polyOrder + 1;
  const int N = n + 1;
  const double s = static_cast<double>(side);
  const QuadRule rule = gauss_legendre(2 * polyOrder + 4);
  DenseMatrix M(N, N);
  for (int q = 0; q < N; ++q) {
    for (int m = 0; m < n; ++m) {
      double sm = 0.0;
      for (std::size_t iq = 0; iq < rule.nodes.size(); ++iq)
        sm += rule.weights[iq] * legendrePsi(m, rule.nodes[iq]) *
              std::pow(rule.nodes[iq], q);
      M(m, q) = sm;
    }
    M(n, q) = dirichlet ? std::pow(s, q)
                        : (q == 0 ? 0.0 : q * std::pow(s, q - 1));
  }
  const LuSolver lu(std::move(M));
  assert(!lu.singular());
  BoundaryRecoveryWeights bw;
  bw.val.resize(static_cast<std::size_t>(n));
  bw.deriv.resize(static_cast<std::size_t>(n));
  std::vector<double> e(static_cast<std::size_t>(N));
  for (int col = 0; col < N; ++col) {
    std::fill(e.begin(), e.end(), 0.0);
    e[static_cast<std::size_t>(col)] = 1.0;
    lu.solve(e);
    // r(side) and r'(side) of the unit response: dot the monomial
    // coefficients with the wall evaluation row.
    double val = 0.0, deriv = 0.0;
    for (int q = 0; q < N; ++q) {
      val += e[static_cast<std::size_t>(q)] * std::pow(s, q);
      if (q > 0) deriv += e[static_cast<std::size_t>(q)] * q * std::pow(s, q - 1);
    }
    if (col < n) {
      bw.val[static_cast<std::size_t>(col)] = val;
      bw.deriv[static_cast<std::size_t>(col)] = deriv;
    } else {
      bw.valG = val;
      bw.derivG = deriv;
    }
  }
  return bw;
}

}  // namespace vdg
