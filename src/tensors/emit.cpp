#include "tensors/emit.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "tensors/vlasov_tensors.hpp"

namespace vdg {

namespace {

/// Format a double so it round-trips exactly.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Make integer-valued constants read as doubles.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

/// Accumulates source text plus operation counts.
struct CodeWriter {
  std::ostringstream os;
  std::size_t mults = 0;
  std::size_t adds = 0;

  void line(const std::string& s) { os << s << "\n"; }

  /// Render "c1*x1 + c2*x2 + ..." counting one multiply per term and one
  /// add per joint; returns "0.0" for an empty sum.
  std::string sum(const std::vector<std::pair<double, std::string>>& terms) {
    if (terms.empty()) return "0.0";
    std::string s;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const auto& [c, x] = terms[i];
      if (i) {
        s += (c < 0 ? " - " : " + ");
        ++adds;
      } else if (c < 0) {
        s += "-";
      }
      const double a = c < 0 ? -c : c;
      if (a == 1.0) {
        s += x;
      } else {
        s += num(a) + "*" + x;
        ++mults;
      }
    }
    return s;
  }
};

std::string fnPrefix(const BasisSpec& spec) { return "vlasov_" + spec.name(); }

/// Gather tape terms grouped by output index l.
template <typename Tape>
std::map<int, std::vector<typename Tape::Term>> groupByOut(const Tape& tape) {
  std::map<int, std::vector<typename Tape::Term>> g;
  for (const auto& t : tape.terms) g[t.l].push_back(t);
  return g;
}

}  // namespace

EmittedKernel emitStreamingVolumeKernel(const BasisSpec& spec) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const int np = ks.numPhaseModes;

  EmittedKernel out;
  out.functionName = fnPrefix(spec) + "_stream_vol";
  CodeWriter w;
  w.line("// Volume streaming kernel (exact DG volume integral of div_x (v f)),");
  w.line("// auto-generated for the " + spec.name() + " basis (" + std::to_string(np) +
         " DOF/cell).");
  w.line("// Inputs: cell center w, cell size dxv, distribution coefficients f;");
  w.line("// out is incremented with the forward-Euler volume contribution.");
  w.line("void " + out.functionName +
         "(const double* w, const double* dxv, const double* f, double* out) {");
  for (int d = 0; d < ks.cdim; ++d) {
    const int vd = ks.cdim + d;
    const std::string sd = std::to_string(d);
    w.line("  const double rdx2_" + sd + " = 2.0/dxv[" + sd + "];");
    w.line("  const double wv_" + sd + " = w[" + std::to_string(vd) + "];");
    w.line("  const double hdv_" + sd + " = 0.5*dxv[" + std::to_string(vd) + "];");
    w.mults += 2;
  }
  for (int l = 0; l < np; ++l) {
    for (int d = 0; d < ks.cdim; ++d) {
      // (c0*wv + c1*hdv) * f[n], gathered per n.
      std::map<int, std::pair<double, double>> byN;
      for (const Tape2::Term& t : ks.streamVol0[static_cast<std::size_t>(d)].terms)
        if (t.l == l) byN[t.n].first += t.c;
      for (const Tape2::Term& t : ks.streamVol1[static_cast<std::size_t>(d)].terms)
        if (t.l == l) byN[t.n].second += t.c;
      if (byN.empty()) continue;
      const std::string sd = std::to_string(d);
      std::string expr;
      bool first = true;
      for (const auto& [n, cc] : byN) {
        const auto& [c0, c1] = cc;
        if (!first) {
          expr += " + ";
          ++w.adds;
        }
        first = false;
        std::vector<std::pair<double, std::string>> parts;
        if (c0 != 0.0) parts.emplace_back(c0, "wv_" + sd);
        if (c1 != 0.0) parts.emplace_back(c1, "hdv_" + sd);
        expr += "(" + w.sum(parts) + ")*f[" + std::to_string(n) + "]";
        ++w.mults;
      }
      w.line("  out[" + std::to_string(l) + "] += rdx2_" + sd + "*(" + expr + ");");
      ++w.mults;
    }
  }
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

EmittedKernel emitAccelVolumeKernel(const BasisSpec& spec) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const int np = ks.numPhaseModes;

  EmittedKernel out;
  out.functionName = fnPrefix(spec) + "_accel_vol";
  CodeWriter w;
  w.line("// Volume acceleration kernel (exact DG volume integral of div_v (alpha f));");
  w.line("// alpha is the per-cell phase-space flux expansion, vdim x " + std::to_string(np) +
         " coefficients.");
  w.line("void " + out.functionName +
         "(const double* dxv, const double* alpha, const double* f, double* out) {");
  for (int j = 0; j < ks.vdim; ++j) {
    const int d = ks.cdim + j;
    w.line("  const double rdv2_" + std::to_string(j) + " = 2.0/dxv[" + std::to_string(d) +
           "];");
    ++w.mults;
  }
  for (int j = 0; j < ks.vdim; ++j) {
    const int d = ks.cdim + j;
    const auto grouped = groupByOut(ks.volume[static_cast<std::size_t>(d)]);
    const int off = j * np;
    for (const auto& [l, terms] : grouped) {
      std::string expr;
      for (std::size_t i = 0; i < terms.size(); ++i) {
        const auto& t = terms[i];
        if (i) {
          expr += (t.c < 0 ? " - " : " + ");
          ++w.adds;
        } else if (t.c < 0) {
          expr += "-";
        }
        const double a = t.c < 0 ? -t.c : t.c;
        expr += num(a) + "*alpha[" + std::to_string(off + t.m) + "]*f[" + std::to_string(t.n) +
                "]";
        w.mults += 2;
      }
      w.line("  out[" + std::to_string(l) + "] += rdv2_" + std::to_string(j) + "*(" + expr +
             ");");
      ++w.mults;
    }
  }
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

namespace {

/// Emit face-trace assignments: name_k = sum psiEnd * src[l], one local
/// variable per face mode.
void emitTrace(CodeWriter& w, const FaceMap& fm, const std::string& name, const std::string& src,
               bool plusSide) {
  std::map<int, std::vector<std::pair<double, std::string>>> byFace;
  for (const FaceMap::Entry& e : fm.entries)
    byFace[e.face].emplace_back(plusSide ? e.atPlus : e.atMinus, src + "[" + std::to_string(e.vol) + "]");
  for (int k = 0; k < fm.numFaceModes; ++k) {
    auto it = byFace.find(k);
    w.line("  const double " + name + std::to_string(k) + " = " +
           (it == byFace.end() ? std::string("0.0") : w.sum(it->second)) + ";");
  }
}

/// Emit the two diagonal lifts of fhat into outl/outr.
void emitLifts(CodeWriter& w, const FaceMap& fm, const std::string& rdx2) {
  for (const FaceMap::Entry& e : fm.entries) {
    // outl[l] -= rdx2 * psiEnd(+1) * fhat_k ; outr[l] += rdx2 * psiEnd(-1) * fhat_k.
    w.line("  outl[" + std::to_string(e.vol) + "] -= " + rdx2 + "*" + num(e.atPlus) + "*fhat" +
           std::to_string(e.face) + ";");
    w.line("  outr[" + std::to_string(e.vol) + "] += " + rdx2 + "*" + num(e.atMinus) + "*fhat" +
           std::to_string(e.face) + ";");
    w.mults += 4;
  }
}

}  // namespace

EmittedKernel emitStreamingSurfaceKernel(const BasisSpec& spec, int dir) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const FaceMap& fm = ks.faceMap[static_cast<std::size_t>(dir)];
  const int nf = fm.numFaceModes;
  const int vd = ks.cdim + dir;

  EmittedKernel out;
  out.functionName = fnPrefix(spec) + "_stream_surf" + std::to_string(dir);
  CodeWriter w;
  w.line("// Surface streaming kernel, configuration direction " + std::to_string(dir) + ":");
  w.line("// local Lax-Friedrichs flux Fhat = v favg - (tau/2)(fr - fl) on the shared");
  w.line("// face, lifted into both adjacent cells (fl: left/lower cell, fr: right).");
  w.line("void " + out.functionName +
         "(const double* w, const double* dxv, const double* fl, const double* fr, double* "
         "outl, double* outr) {");
  w.line("  const double rdx2 = 2.0/dxv[" + std::to_string(dir) + "];");
  w.line("  const double wv = w[" + std::to_string(vd) + "];");
  w.line("  const double hdv = 0.5*dxv[" + std::to_string(vd) + "];");
  w.line("  const double tau = std::fmax(std::fabs(wv - hdv), std::fabs(wv + hdv));");
  w.mults += 3;
  emitTrace(w, fm, "fL", "fl", /*plusSide=*/true);
  emitTrace(w, fm, "fR", "fr", /*plusSide=*/false);
  for (int k = 0; k < nf; ++k) {
    const std::string sk = std::to_string(k);
    w.line("  const double favg" + sk + " = 0.5*(fL" + sk + " + fR" + sk + ");");
    ++w.mults;
    ++w.adds;
  }
  // fhat_k = wv * G0_k(favg) + hdv * G1_k(favg) - 0.5 tau (fR_k - fL_k).
  std::map<int, std::vector<std::pair<double, std::string>>> g0, g1;
  for (const Tape2::Term& t : ks.streamFace0[static_cast<std::size_t>(dir)].terms)
    g0[t.l].emplace_back(t.c, "favg" + std::to_string(t.n));
  for (const Tape2::Term& t : ks.streamFace1[static_cast<std::size_t>(dir)].terms)
    g1[t.l].emplace_back(t.c, "favg" + std::to_string(t.n));
  for (int k = 0; k < nf; ++k) {
    const std::string sk = std::to_string(k);
    std::string expr = "wv*(" + w.sum(g0[k]) + ") + hdv*(" + w.sum(g1[k]) + ") - 0.5*tau*(fR" +
                       sk + " - fL" + sk + ")";
    w.mults += 3;
    w.adds += 3;
    w.line("  const double fhat" + sk + " = " + expr + ";");
  }
  emitLifts(w, fm, "rdx2");
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

EmittedKernel emitAccelSurfaceKernel(const BasisSpec& spec, int j) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const int d = ks.cdim + j;
  const FaceMap& fm = ks.faceMap[static_cast<std::size_t>(d)];
  const int nf = fm.numFaceModes;
  const std::vector<double>& sup = ks.faceSup[static_cast<std::size_t>(d)];

  EmittedKernel out;
  out.functionName = fnPrefix(spec) + "_accel_surf" + std::to_string(j);
  CodeWriter w;
  w.line("// Surface acceleration kernel, velocity direction " + std::to_string(j) + ":");
  w.line("// per-side flux expansions (paper Eq. 5) with a local Lax-Friedrichs");
  w.line("// penalty bounded by the coefficient-sup estimate of |alpha| on the face.");
  w.line("void " + out.functionName +
         "(const double* dxv, const double* al, const double* ar, const double* fl, const "
         "double* fr, double* outl, double* outr) {");
  w.line("  const double rdx2 = 2.0/dxv[" + std::to_string(d) + "];");
  ++w.mults;
  emitTrace(w, fm, "fL", "fl", true);
  emitTrace(w, fm, "fR", "fr", false);
  emitTrace(w, fm, "aL", "al", true);
  emitTrace(w, fm, "aR", "ar", false);
  {
    std::string bl = "0.0", br = "0.0";
    for (int k = 0; k < nf; ++k) {
      const std::string sk = std::to_string(k);
      const std::string c = num(sup[static_cast<std::size_t>(k)]);
      bl += " + " + c + "*std::fabs(aL" + sk + ")";
      br += " + " + c + "*std::fabs(aR" + sk + ")";
      w.mults += 2;
      w.adds += 2;
    }
    w.line("  const double tau = std::fmax(" + bl + ", " + br + ");");
  }
  const auto gaunt = groupByOut(ks.faceProduct[static_cast<std::size_t>(d)]);
  for (int k = 0; k < nf; ++k) {
    const std::string sk = std::to_string(k);
    std::string expr;
    const auto it = gaunt.find(k);
    if (it != gaunt.end()) {
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        const auto& t = it->second[i];
        if (i) {
          expr += (t.c < 0 ? " - " : " + ");
          ++w.adds;
        } else if (t.c < 0) {
          expr += "-";
        }
        const double a = t.c < 0 ? -t.c : t.c;
        expr += num(a) + "*(aL" + std::to_string(t.m) + "*fL" + std::to_string(t.n) + " + aR" +
                std::to_string(t.m) + "*fR" + std::to_string(t.n) + ")";
        w.mults += 3;
        w.adds += 1;
      }
    }
    if (expr.empty()) expr = "0.0";
    w.line("  const double fhat" + sk + " = 0.5*(" + expr + ") - 0.5*tau*(fR" + sk + " - fL" +
           sk + ");");
    w.mults += 2;
    w.adds += 2;
  }
  emitLifts(w, fm, "rdx2");
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

std::string emitKernelTranslationUnit(const BasisSpec& spec) {
  std::ostringstream os;
  os << "// ============================================================================\n"
     << "// AUTO-GENERATED by tools/gen_kernels — DO NOT EDIT BY HAND.\n"
     << "// Exact (alias-free) modal DG Vlasov kernels for the " << spec.name() << " basis,\n"
     << "// rendered from the symbolically integrated sparse tensors with all\n"
     << "// constants folded to double precision (the paper's Maxima-CAS workflow).\n"
     << "// Regenerate with: gen_kernels <output-dir>\n"
     << "// ============================================================================\n"
     << "// clang-format off\n"
     << "#include <cmath>\n\n"
     << "#include \"kernels/registry.hpp\"\n\n"
     << "namespace vdg::gen_" << spec.name() << " {\n\n";

  const VlasovKernelSet& ks = vlasovKernels(spec);
  std::vector<EmittedKernel> kernels;
  kernels.push_back(emitStreamingVolumeKernel(spec));
  kernels.push_back(emitAccelVolumeKernel(spec));
  for (int d = 0; d < ks.cdim; ++d) kernels.push_back(emitStreamingSurfaceKernel(spec, d));
  for (int j = 0; j < ks.vdim; ++j) kernels.push_back(emitAccelSurfaceKernel(spec, j));

  for (const EmittedKernel& k : kernels) {
    // Make the functions static and internal to the namespace.
    os << "static " << k.source << "\n";
  }

  os << "void registerKernels() {\n"
     << "  VlasovCompiledKernels k;\n"
     << "  k.numPhaseModes = " << ks.numPhaseModes << ";\n"
     << "  k.streamVol = " << fnPrefix(spec) << "_stream_vol;\n"
     << "  k.accelVol = " << fnPrefix(spec) << "_accel_vol;\n";
  for (int d = 0; d < ks.cdim; ++d)
    os << "  k.streamSurf[" << d << "] = " << fnPrefix(spec) << "_stream_surf" << d << ";\n";
  for (int j = 0; j < ks.vdim; ++j)
    os << "  k.accelSurf[" << j << "] = " << fnPrefix(spec) << "_accel_surf" << j << ";\n";
  os << "  registerCompiledKernels(\"" << spec.name() << "\", k);\n"
     << "}\n\n"
     << "}  // namespace vdg::gen_" << spec.name() << "\n";
  return os.str();
}

}  // namespace vdg
