#include "tensors/emit.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "kernels/registry.hpp"
#include "tensors/vlasov_tensors.hpp"

namespace vdg {

namespace {

/// Format a double so it round-trips exactly.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Make integer-valued constants read as doubles.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

/// Array-element rendering for the two emission modes. Scalar kernels
/// address one cell: `f[3]`. Batched kernels address an AoSoA block of B
/// cells (mode-major, lane-minor) from inside a `for (int b...)` lane
/// loop: `f[3*B+b]`.
struct Lane {
  bool on = false;
  [[nodiscard]] std::string at(const std::string& arr, int i) const {
    return arr + "[" + std::to_string(i) + (on ? "*B+b]" : "]");
  }
};

/// Accumulates source text plus operation counts.
struct CodeWriter {
  std::ostringstream os;
  std::size_t mults = 0;
  std::size_t adds = 0;
  std::string indent = "  ";  ///< batched bodies sit inside the lane loop

  void line(const std::string& s) { os << s << "\n"; }
  void body(const std::string& s) { os << indent << s << "\n"; }

  /// Render "c1*x1 + c2*x2 + ..." counting one multiply per term and one
  /// add per joint; returns "0.0" for an empty sum.
  std::string sum(const std::vector<std::pair<double, std::string>>& terms) {
    if (terms.empty()) return "0.0";
    std::string s;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const auto& [c, x] = terms[i];
      if (i) {
        s += (c < 0 ? " - " : " + ");
        ++adds;
      } else if (c < 0) {
        s += "-";
      }
      const double a = c < 0 ? -c : c;
      if (a == 1.0) {
        s += x;
      } else {
        s += num(a) + "*" + x;
        ++mults;
      }
    }
    return s;
  }
};

std::string fnPrefix(const BasisSpec& spec) { return "vlasov_" + spec.name(); }

/// Parameter-list rendering: batched kernels take __restrict-qualified
/// pointers (the pack/scatter layer guarantees disjoint buffers), which
/// lets the compiler vectorize the lane loop without alias versioning.
std::string params(const Lane& lane, std::initializer_list<std::pair<const char*, const char*>> ps) {
  std::string s;
  bool first = true;
  for (const auto& [type, name] : ps) {
    if (!first) s += ", ";
    first = false;
    s += std::string(type) + (lane.on ? "* __restrict " : "* ") + name;
  }
  return s;
}

/// Gather tape terms grouped by output index l.
template <typename Tape>
std::map<int, std::vector<typename Tape::Term>> groupByOut(const Tape& tape) {
  std::map<int, std::vector<typename Tape::Term>> g;
  for (const auto& t : tape.terms) g[t.l].push_back(t);
  return g;
}

}  // namespace

EmittedKernel emitStreamingVolumeKernel(const BasisSpec& spec, bool batched) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const int np = ks.numPhaseModes;
  const Lane lane{batched};

  EmittedKernel out;
  out.functionName = fnPrefix(spec) + "_stream_vol" + (batched ? "_bat" : "");
  CodeWriter w;
  if (batched) w.indent = "    ";
  w.line("// Volume streaming kernel (exact DG volume integral of div_x (v f)),");
  w.line("// auto-generated for the " + spec.name() + " basis (" + std::to_string(np) +
         " DOF/cell).");
  if (batched) {
    w.line("// Batched AoSoA variant: arrays hold B cells mode-major/lane-minor");
    w.line("// ([i*B+b]); per lane the FP operation order matches the scalar kernel.");
    w.line("template <int B>");
  } else {
    w.line("// Inputs: cell center w, cell size dxv, distribution coefficients f;");
    w.line("// out is incremented with the forward-Euler volume contribution.");
  }
  w.line("void " + out.functionName + "(" +
         params(lane, {{"const double", "w"},
                       {"const double", "dxv"},
                       {"const double", "f"},
                       {"double", "out"}}) +
         ") {");
  for (int d = 0; d < ks.cdim; ++d) {
    const int vd = ks.cdim + d;
    const std::string sd = std::to_string(d);
    w.line("  const double rdx2_" + sd + " = 2.0/dxv[" + sd + "];");
    if (!batched) w.line("  const double wv_" + sd + " = w[" + std::to_string(vd) + "];");
    w.line("  const double hdv_" + sd + " = 0.5*dxv[" + std::to_string(vd) + "];");
    w.mults += 2;
  }
  if (batched) {
    w.line("  for (int b = 0; b < B; ++b) {");
    for (int d = 0; d < ks.cdim; ++d)
      w.body("const double wv_" + std::to_string(d) + " = " + lane.at("w", ks.cdim + d) + ";");
  }
  for (int l = 0; l < np; ++l) {
    for (int d = 0; d < ks.cdim; ++d) {
      // (c0*wv + c1*hdv) * f[n], gathered per n.
      std::map<int, std::pair<double, double>> byN;
      for (const Tape2::Term& t : ks.streamVol0[static_cast<std::size_t>(d)].terms)
        if (t.l == l) byN[t.n].first += t.c;
      for (const Tape2::Term& t : ks.streamVol1[static_cast<std::size_t>(d)].terms)
        if (t.l == l) byN[t.n].second += t.c;
      if (byN.empty()) continue;
      const std::string sd = std::to_string(d);
      std::string expr;
      bool first = true;
      for (const auto& [n, cc] : byN) {
        const auto& [c0, c1] = cc;
        if (!first) {
          expr += " + ";
          ++w.adds;
        }
        first = false;
        std::vector<std::pair<double, std::string>> parts;
        if (c0 != 0.0) parts.emplace_back(c0, "wv_" + sd);
        if (c1 != 0.0) parts.emplace_back(c1, "hdv_" + sd);
        expr += "(" + w.sum(parts) + ")*" + lane.at("f", n);
        ++w.mults;
      }
      w.body(lane.at("out", l) + " += rdx2_" + sd + "*(" + expr + ");");
      ++w.mults;
    }
  }
  if (batched) w.line("  }");
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

EmittedKernel emitAccelVolumeKernel(const BasisSpec& spec, bool batched) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const int np = ks.numPhaseModes;
  const Lane lane{batched};

  EmittedKernel out;
  out.functionName = fnPrefix(spec) + "_accel_vol" + (batched ? "_bat" : "");
  CodeWriter w;
  if (batched) w.indent = "    ";
  w.line("// Volume acceleration kernel (exact DG volume integral of div_v (alpha f));");
  w.line("// alpha is the per-cell phase-space flux expansion, vdim x " + std::to_string(np) +
         " coefficients.");
  if (batched) {
    w.line("// Batched AoSoA variant (B cells per call, lane-minor layout).");
    w.line("template <int B>");
  }
  w.line("void " + out.functionName + "(" +
         params(lane, {{"const double", "dxv"},
                       {"const double", "alpha"},
                       {"const double", "f"},
                       {"double", "out"}}) +
         ") {");
  for (int j = 0; j < ks.vdim; ++j) {
    const int d = ks.cdim + j;
    w.line("  const double rdv2_" + std::to_string(j) + " = 2.0/dxv[" + std::to_string(d) +
           "];");
    ++w.mults;
  }
  if (batched) w.line("  for (int b = 0; b < B; ++b) {");
  for (int j = 0; j < ks.vdim; ++j) {
    const int d = ks.cdim + j;
    const auto grouped = groupByOut(ks.volume[static_cast<std::size_t>(d)]);
    const int off = j * np;
    for (const auto& [l, terms] : grouped) {
      std::string expr;
      for (std::size_t i = 0; i < terms.size(); ++i) {
        const auto& t = terms[i];
        if (i) {
          expr += (t.c < 0 ? " - " : " + ");
          ++w.adds;
        } else if (t.c < 0) {
          expr += "-";
        }
        const double a = t.c < 0 ? -t.c : t.c;
        expr += num(a) + "*" + lane.at("alpha", off + t.m) + "*" + lane.at("f", t.n);
        w.mults += 2;
      }
      w.body(lane.at("out", l) + " += rdv2_" + std::to_string(j) + "*(" + expr + ");");
      ++w.mults;
    }
  }
  if (batched) w.line("  }");
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

namespace {

/// Emit face-trace assignments: name_k = sum psiEnd * src[l], one local
/// variable per face mode (per lane in batched mode).
void emitTrace(CodeWriter& w, const FaceMap& fm, const std::string& name, const std::string& src,
               bool plusSide, const Lane& lane) {
  std::map<int, std::vector<std::pair<double, std::string>>> byFace;
  for (const FaceMap::Entry& e : fm.entries)
    byFace[e.face].emplace_back(plusSide ? e.atPlus : e.atMinus, lane.at(src, e.vol));
  for (int k = 0; k < fm.numFaceModes; ++k) {
    auto it = byFace.find(k);
    w.body("const double " + name + std::to_string(k) + " = " +
           (it == byFace.end() ? std::string("0.0") : w.sum(it->second)) + ";");
  }
}

/// Emit the two diagonal lifts of fhat into outl/outr.
void emitLifts(CodeWriter& w, const FaceMap& fm, const std::string& rdx2, const Lane& lane) {
  for (const FaceMap::Entry& e : fm.entries) {
    // outl[l] -= rdx2 * psiEnd(+1) * fhat_k ; outr[l] += rdx2 * psiEnd(-1) * fhat_k.
    w.body(lane.at("outl", e.vol) + " -= " + rdx2 + "*" + num(e.atPlus) + "*fhat" +
           std::to_string(e.face) + ";");
    w.body(lane.at("outr", e.vol) + " += " + rdx2 + "*" + num(e.atMinus) + "*fhat" +
           std::to_string(e.face) + ";");
    w.mults += 4;
  }
}

}  // namespace

EmittedKernel emitStreamingSurfaceKernel(const BasisSpec& spec, int dir, bool batched) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const FaceMap& fm = ks.faceMap[static_cast<std::size_t>(dir)];
  const int nf = fm.numFaceModes;
  const int vd = ks.cdim + dir;
  const Lane lane{batched};

  EmittedKernel out;
  out.functionName =
      fnPrefix(spec) + "_stream_surf" + std::to_string(dir) + (batched ? "_bat" : "");
  CodeWriter w;
  if (batched) w.indent = "    ";
  w.line("// Surface streaming kernel, configuration direction " + std::to_string(dir) + ":");
  w.line("// local Lax-Friedrichs flux Fhat = v favg - (tau/2)(fr - fl) on the shared");
  w.line("// face, lifted into both adjacent cells (fl: left/lower cell, fr: right).");
  if (batched) {
    w.line("// Batched AoSoA variant (B faces per call, lane-minor layout).");
    w.line("template <int B>");
  }
  w.line("void " + out.functionName + "(" +
         params(lane, {{"const double", "w"},
                       {"const double", "dxv"},
                       {"const double", "fl"},
                       {"const double", "fr"},
                       {"double", "outl"},
                       {"double", "outr"}}) +
         ") {");
  w.line("  const double rdx2 = 2.0/dxv[" + std::to_string(dir) + "];");
  if (!batched) w.line("  const double wv = w[" + std::to_string(vd) + "];");
  w.line("  const double hdv = 0.5*dxv[" + std::to_string(vd) + "];");
  if (batched) {
    w.line("  for (int b = 0; b < B; ++b) {");
    w.body("const double wv = " + lane.at("w", vd) + ";");
  }
  w.body("const double tau = std::fmax(std::fabs(wv - hdv), std::fabs(wv + hdv));");
  w.mults += 3;
  emitTrace(w, fm, "fL", "fl", /*plusSide=*/true, lane);
  emitTrace(w, fm, "fR", "fr", /*plusSide=*/false, lane);
  for (int k = 0; k < nf; ++k) {
    const std::string sk = std::to_string(k);
    w.body("const double favg" + sk + " = 0.5*(fL" + sk + " + fR" + sk + ");");
    ++w.mults;
    ++w.adds;
  }
  // fhat_k = wv * G0_k(favg) + hdv * G1_k(favg) - 0.5 tau (fR_k - fL_k).
  std::map<int, std::vector<std::pair<double, std::string>>> g0, g1;
  for (const Tape2::Term& t : ks.streamFace0[static_cast<std::size_t>(dir)].terms)
    g0[t.l].emplace_back(t.c, "favg" + std::to_string(t.n));
  for (const Tape2::Term& t : ks.streamFace1[static_cast<std::size_t>(dir)].terms)
    g1[t.l].emplace_back(t.c, "favg" + std::to_string(t.n));
  for (int k = 0; k < nf; ++k) {
    const std::string sk = std::to_string(k);
    std::string expr = "wv*(" + w.sum(g0[k]) + ") + hdv*(" + w.sum(g1[k]) + ") - 0.5*tau*(fR" +
                       sk + " - fL" + sk + ")";
    w.mults += 3;
    w.adds += 3;
    w.body("const double fhat" + sk + " = " + expr + ";");
  }
  emitLifts(w, fm, "rdx2", lane);
  if (batched) w.line("  }");
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

EmittedKernel emitAccelSurfaceKernel(const BasisSpec& spec, int j, bool batched) {
  const VlasovKernelSet& ks = vlasovKernels(spec);
  const int d = ks.cdim + j;
  const FaceMap& fm = ks.faceMap[static_cast<std::size_t>(d)];
  const int nf = fm.numFaceModes;
  const std::vector<double>& sup = ks.faceSup[static_cast<std::size_t>(d)];
  const Lane lane{batched};

  EmittedKernel out;
  out.functionName =
      fnPrefix(spec) + "_accel_surf" + std::to_string(j) + (batched ? "_bat" : "");
  CodeWriter w;
  if (batched) w.indent = "    ";
  w.line("// Surface acceleration kernel, velocity direction " + std::to_string(j) + ":");
  w.line("// per-side flux expansions (paper Eq. 5) with a local Lax-Friedrichs");
  w.line("// penalty bounded by the coefficient-sup estimate of |alpha| on the face.");
  if (batched) {
    w.line("// Batched AoSoA variant (B faces per call, lane-minor layout).");
    w.line("template <int B>");
  }
  w.line("void " + out.functionName + "(" +
         params(lane, {{"const double", "dxv"},
                       {"const double", "al"},
                       {"const double", "ar"},
                       {"const double", "fl"},
                       {"const double", "fr"},
                       {"double", "outl"},
                       {"double", "outr"}}) +
         ") {");
  w.line("  const double rdx2 = 2.0/dxv[" + std::to_string(d) + "];");
  ++w.mults;
  if (batched) w.line("  for (int b = 0; b < B; ++b) {");
  emitTrace(w, fm, "fL", "fl", true, lane);
  emitTrace(w, fm, "fR", "fr", false, lane);
  emitTrace(w, fm, "aL", "al", true, lane);
  emitTrace(w, fm, "aR", "ar", false, lane);
  {
    std::string bl = "0.0", br = "0.0";
    for (int k = 0; k < nf; ++k) {
      const std::string sk = std::to_string(k);
      const std::string c = num(sup[static_cast<std::size_t>(k)]);
      bl += " + " + c + "*std::fabs(aL" + sk + ")";
      br += " + " + c + "*std::fabs(aR" + sk + ")";
      w.mults += 2;
      w.adds += 2;
    }
    w.body("const double tau = std::fmax(" + bl + ", " + br + ");");
  }
  const auto gaunt = groupByOut(ks.faceProduct[static_cast<std::size_t>(d)]);
  for (int k = 0; k < nf; ++k) {
    const std::string sk = std::to_string(k);
    std::string expr;
    const auto it = gaunt.find(k);
    if (it != gaunt.end()) {
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        const auto& t = it->second[i];
        if (i) {
          expr += (t.c < 0 ? " - " : " + ");
          ++w.adds;
        } else if (t.c < 0) {
          expr += "-";
        }
        const double a = t.c < 0 ? -t.c : t.c;
        expr += num(a) + "*(aL" + std::to_string(t.m) + "*fL" + std::to_string(t.n) + " + aR" +
                std::to_string(t.m) + "*fR" + std::to_string(t.n) + ")";
        w.mults += 3;
        w.adds += 1;
      }
    }
    if (expr.empty()) expr = "0.0";
    w.body("const double fhat" + sk + " = 0.5*(" + expr + ") - 0.5*tau*(fR" + sk + " - fL" +
           sk + ");");
    w.mults += 2;
    w.adds += 2;
  }
  emitLifts(w, fm, "rdx2", lane);
  if (batched) w.line("  }");
  w.line("}");
  out.source = w.os.str();
  out.multiplies = w.mults;
  out.adds = w.adds;
  return out;
}

std::string emitKernelTranslationUnit(const BasisSpec& spec) {
  std::ostringstream os;
  os << "// ============================================================================\n"
     << "// AUTO-GENERATED by tools/gen_kernels — DO NOT EDIT BY HAND.\n"
     << "// Exact (alias-free) modal DG Vlasov kernels for the " << spec.name() << " basis,\n"
     << "// rendered from the symbolically integrated sparse tensors with all\n"
     << "// constants folded to double precision (the paper's Maxima-CAS workflow).\n"
     << "// Regenerate with: gen_kernels <output-dir>\n"
     << "// ============================================================================\n"
     << "// clang-format off\n"
     << "#include <cmath>\n\n"
     << "#include \"kernels/registry.hpp\"\n\n"
     << "namespace vdg::gen_" << spec.name() << " {\n\n";

  const VlasovKernelSet& ks = vlasovKernels(spec);
  std::vector<EmittedKernel> kernels;
  kernels.push_back(emitStreamingVolumeKernel(spec));
  kernels.push_back(emitAccelVolumeKernel(spec));
  for (int d = 0; d < ks.cdim; ++d) kernels.push_back(emitStreamingSurfaceKernel(spec, d));
  for (int j = 0; j < ks.vdim; ++j) kernels.push_back(emitAccelSurfaceKernel(spec, j));

  for (const EmittedKernel& k : kernels) {
    // Make the functions static and internal to the namespace.
    os << "static " << k.source << "\n";
  }

  os << "void registerKernels() {\n"
     << "  VlasovCompiledKernels k;\n"
     << "  k.numPhaseModes = " << ks.numPhaseModes << ";\n"
     << "  k.streamVol = " << fnPrefix(spec) << "_stream_vol;\n"
     << "  k.accelVol = " << fnPrefix(spec) << "_accel_vol;\n";
  for (int d = 0; d < ks.cdim; ++d)
    os << "  k.streamSurf[" << d << "] = " << fnPrefix(spec) << "_stream_surf" << d << ";\n";
  for (int j = 0; j < ks.vdim; ++j)
    os << "  k.accelSurf[" << j << "] = " << fnPrefix(spec) << "_accel_surf" << j << ";\n";
  os << "  registerCompiledKernels(\"" << spec.name() << "\", k);\n"
     << "}\n\n"
     << "}  // namespace vdg::gen_" << spec.name() << "\n";
  return os.str();
}

std::string emitBatchedKernelTranslationUnit(const BasisSpec& spec) {
  std::ostringstream os;
  os << "// ============================================================================\n"
     << "// AUTO-GENERATED by tools/gen_kernels — DO NOT EDIT BY HAND.\n"
     << "// SIMD-batched (AoSoA) modal DG Vlasov kernels for the " << spec.name() << " basis:\n"
     << "// the scalar kernels of vlasov_" << spec.name() << ".cpp with the cell index turned\n"
     << "// into an inner lane loop over a block of B cells (mode-major, lane-minor\n"
     << "// layout, element i of lane b at [i*B+b]) so the compiler autovectorizes\n"
     << "// across cells. Per lane the FP operation order is identical to the scalar\n"
     << "// kernel — the batched path is bitwise reproducible (tests/test_batch.cpp).\n"
     << "// This translation unit is compiled with the VDG_KERNEL_SIMD flags (wider\n"
     << "// ISA + -ffp-contract=off); the scalar units keep the baseline ISA.\n"
     << "// Regenerate with: gen_kernels <output-dir>\n"
     << "// ============================================================================\n"
     << "// clang-format off\n"
     << "#include <cmath>\n\n"
     << "#include \"kernels/registry.hpp\"\n\n"
     << "namespace vdg::gen_" << spec.name() << "_batch {\nnamespace {\n\n";

  const VlasovKernelSet& ks = vlasovKernels(spec);
  std::vector<EmittedKernel> kernels;
  kernels.push_back(emitStreamingVolumeKernel(spec, /*batched=*/true));
  kernels.push_back(emitAccelVolumeKernel(spec, /*batched=*/true));
  for (int d = 0; d < ks.cdim; ++d)
    kernels.push_back(emitStreamingSurfaceKernel(spec, d, /*batched=*/true));
  for (int j = 0; j < ks.vdim; ++j)
    kernels.push_back(emitAccelSurfaceKernel(spec, j, /*batched=*/true));

  for (const EmittedKernel& k : kernels) os << k.source << "\n";

  os << "}  // namespace\n\n"
     << "void registerKernels() {\n";
  for (int i = 0; i < kNumKernelBatchLanes; ++i) {
    const int lanes = kKernelBatchLanes[i];
    os << "  {\n"
       << "    VlasovBatchedKernels b;\n"
       << "    b.lanes = " << lanes << ";\n"
       << "    b.streamVol = " << fnPrefix(spec) << "_stream_vol_bat<" << lanes << ">;\n"
       << "    b.accelVol = " << fnPrefix(spec) << "_accel_vol_bat<" << lanes << ">;\n";
    for (int d = 0; d < ks.cdim; ++d)
      os << "    b.streamSurf[" << d << "] = " << fnPrefix(spec) << "_stream_surf" << d
         << "_bat<" << lanes << ">;\n";
    for (int j = 0; j < ks.vdim; ++j)
      os << "    b.accelSurf[" << j << "] = " << fnPrefix(spec) << "_accel_surf" << j
         << "_bat<" << lanes << ">;\n";
    os << "    registerBatchedKernels(\"" << spec.name() << "\", b);\n"
       << "  }\n";
  }
  os << "}\n\n"
     << "}  // namespace vdg::gen_" << spec.name() << "_batch\n";
  return os.str();
}

}  // namespace vdg
