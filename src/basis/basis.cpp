#include "basis/basis.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "math/legendre.hpp"

namespace vdg {

std::string to_string(BasisFamily f) {
  switch (f) {
    case BasisFamily::MaximalOrder: return "max";
    case BasisFamily::Serendipity: return "ser";
    case BasisFamily::Tensor: return "ten";
  }
  return "?";
}

std::string BasisSpec::name() const {
  std::string s;
  if (vdim > 0)
    s = std::to_string(cdim) + "x" + std::to_string(vdim) + "v";
  else
    s = std::to_string(cdim) + "d";
  return s + "_p" + std::to_string(polyOrder) + "_" + to_string(family);
}

namespace {

bool admits(BasisFamily family, const MultiIndex& a, int ndim, int p) {
  switch (family) {
    case BasisFamily::Tensor: return a.maxDegree(ndim) <= p;
    case BasisFamily::MaximalOrder: return a.totalDegree(ndim) <= p;
    case BasisFamily::Serendipity: return a.superlinearDegree(ndim) <= p;
  }
  return false;
}

std::vector<MultiIndex> enumerateModes(const BasisSpec& spec) {
  const int d = spec.ndim();
  const int p = spec.polyOrder;
  std::vector<MultiIndex> modes;
  MultiIndex a;
  // Odometer enumeration of {0..p}^d. (Serendipity/maximal-order per-entry
  // degrees never exceed p, so this covers all families.)
  while (true) {
    if (admits(spec.family, a, d, p)) modes.push_back(a);
    int k = 0;
    while (k < d && a[k] == p) a[k++] = 0;
    if (k == d) break;
    ++a[k];
  }
  std::sort(modes.begin(), modes.end(), [d](const MultiIndex& x, const MultiIndex& y) {
    const int tx = x.totalDegree(d), ty = y.totalDegree(d);
    if (tx != ty) return tx < ty;
    return std::lexicographical_compare(y.v.begin(), y.v.end(), x.v.begin(), x.v.end());
  });
  return modes;
}

}  // namespace

Basis::Basis(const BasisSpec& spec) : spec_(spec) {
  if (spec.ndim() < 1 || spec.ndim() > kMaxDim)
    throw std::invalid_argument("Basis: ndim must be in [1, 6]");
  if (spec.polyOrder < 0 || spec.polyOrder > 3)
    throw std::invalid_argument("Basis: polyOrder must be in [0, 3]");
  modes_ = enumerateModes(spec);
  index_.reserve(modes_.size());
  for (int l = 0; l < numModes(); ++l) index_[modes_[static_cast<std::size_t>(l)]] = l;
}

int Basis::indexOf(const MultiIndex& a) const {
  const auto it = index_.find(a);
  return it == index_.end() ? -1 : it->second;
}

double Basis::evalMode(int l, const double* eta) const {
  const MultiIndex& a = mode(l);
  double v = 1.0;
  for (int d = 0; d < ndim(); ++d) v *= legendrePsi(a[d], eta[d]);
  return v;
}

double Basis::evalModeDeriv(int l, int d, const double* eta) const {
  const MultiIndex& a = mode(l);
  double v = 1.0;
  for (int i = 0; i < ndim(); ++i)
    v *= (i == d) ? legendrePsiDeriv(a[i], eta[i]) : legendrePsi(a[i], eta[i]);
  return v;
}

void Basis::evalAll(const double* eta, double* out) const {
  for (int l = 0; l < numModes(); ++l) out[l] = evalMode(l, eta);
}

double Basis::evalExpansion(const double* coeff, const double* eta) const {
  double s = 0.0;
  for (int l = 0; l < numModes(); ++l) s += coeff[l] * evalMode(l, eta);
  return s;
}

Basis Basis::faceBasis(int dir) const {
  assert(ndim() >= 2 && dir >= 0 && dir < ndim());
  // The face basis keeps the family and order in ndim-1 dimensions. The
  // cdim/vdim split of the face spec is bookkeeping only; pick the split
  // consistent with which side of the phase space the dropped dim lies on.
  BasisSpec fs = spec_;
  if (dir < spec_.cdim)
    fs.cdim -= 1;
  else
    fs.vdim -= 1;
  if (fs.cdim == 0) {  // normalize: basis math only cares about ndim
    fs.cdim = fs.vdim;
    fs.vdim = 0;
  }
  Basis face(fs);
#ifndef NDEBUG
  // Closure property: every restriction of a volume mode is a face mode.
  for (const MultiIndex& a : modes_)
    assert(face.indexOf(a.dropDim(dir, ndim())) >= 0);
#endif
  return face;
}

const Basis& basisFor(const BasisSpec& spec) {
  struct SpecHash {
    std::size_t operator()(const BasisSpec& s) const {
      return static_cast<std::size_t>(s.cdim) * 1000003u +
             static_cast<std::size_t>(s.vdim) * 10007u +
             static_cast<std::size_t>(s.polyOrder) * 101u +
             static_cast<std::size_t>(s.family);
    }
  };
  static std::unordered_map<BasisSpec, Basis, SpecHash> cache;
  auto it = cache.find(spec);
  if (it == cache.end()) it = cache.emplace(spec, Basis(spec)).first;
  return it->second;
}

int serendipityDim(int ndim, int p) {
  // Independent combinatorial count (Arnold-Awanou): choose the set S of
  // superlinearly-occurring variables (each degree >= 2, degrees summing to
  // at most p), the rest enter with degree 0 or 1.
  auto binom = [](int n, int k) -> long {
    if (k < 0 || k > n) return 0;
    long r = 1;
    for (int i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
    return r;
  };
  long dim = 0;
  for (int s = 0; 2 * s <= p; ++s)
    dim += (1L << (ndim - s)) * binom(ndim, s) * binom(p - s, s);
  return static_cast<int>(dim);
}

}  // namespace vdg
