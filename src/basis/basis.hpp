#pragma once
// Modal orthonormal basis sets on the reference cell [-1,1]^ndim.
//
// All three families of the paper (maximal-order, Serendipity, tensor
// product) are realized as subsets of products of orthonormal Legendre
// polynomials psi_k, selected by a rule on the multi-index of per-direction
// degrees:
//   tensor:        max_i a_i <= p                (Np = (p+1)^d)
//   maximal-order: sum_i a_i <= p                (Np = C(d+p, p))
//   Serendipity:   sum_{i: a_i>=2} a_i <= p      (e.g. 5-D p2: Np = 112)
// Because the selection rules are monotone under lowering any single degree,
// each subset spans exactly the corresponding polynomial space, and the
// basis is orthonormal (products of orthonormal 1-D factors). This is what
// lets every DG tensor factorize into the exact 1-D tables in math/.

#include <string>
#include <unordered_map>
#include <vector>

#include "math/multi_index.hpp"

namespace vdg {

enum class BasisFamily { MaximalOrder, Serendipity, Tensor };

[[nodiscard]] std::string to_string(BasisFamily f);

/// Identifies a basis set: cdim configuration dimensions followed by vdim
/// velocity dimensions (vdim = 0 for configuration-space fields), polynomial
/// order p, and the family selection rule.
struct BasisSpec {
  int cdim = 1;
  int vdim = 0;
  int polyOrder = 1;
  BasisFamily family = BasisFamily::Serendipity;

  [[nodiscard]] int ndim() const { return cdim + vdim; }
  [[nodiscard]] BasisSpec configSpec() const {
    return BasisSpec{cdim, 0, polyOrder, family};
  }
  friend bool operator==(const BasisSpec&, const BasisSpec&) = default;
  [[nodiscard]] std::string name() const;  // e.g. "2x3v_p2_ser"
};

/// An immutable, validated modal basis set.
class Basis {
 public:
  explicit Basis(const BasisSpec& spec);

  [[nodiscard]] const BasisSpec& spec() const { return spec_; }
  [[nodiscard]] int ndim() const { return spec_.ndim(); }
  [[nodiscard]] int numModes() const { return static_cast<int>(modes_.size()); }
  [[nodiscard]] const std::vector<MultiIndex>& modes() const { return modes_; }
  [[nodiscard]] const MultiIndex& mode(int l) const { return modes_[static_cast<std::size_t>(l)]; }

  /// Index of a multi-index in this basis, or -1 if not a member.
  [[nodiscard]] int indexOf(const MultiIndex& a) const;

  /// Evaluate basis function l at reference point eta (size ndim).
  [[nodiscard]] double evalMode(int l, const double* eta) const;

  /// d/d eta_d of basis function l at eta.
  [[nodiscard]] double evalModeDeriv(int l, int d, const double* eta) const;

  /// Evaluate all modes at eta into out (size numModes).
  void evalAll(const double* eta, double* out) const;

  /// Evaluate f(eta) = sum_l coeff[l] w_l(eta).
  [[nodiscard]] double evalExpansion(const double* coeff, const double* eta) const;

  /// The (ndim-1)-dimensional face basis (same family and order). For all
  /// three families the restriction of a volume mode to a face maps onto
  /// exactly one face mode (the multi-index with the face-normal dimension
  /// dropped); construction asserts this closure property.
  [[nodiscard]] Basis faceBasis(int dir) const;

 private:
  BasisSpec spec_;
  std::vector<MultiIndex> modes_;
  std::unordered_map<MultiIndex, int, MultiIndexHash> index_;
};

/// Shared, cached basis lookup (bases are immutable; the cache avoids
/// rebuilding mode tables for every updater).
const Basis& basisFor(const BasisSpec& spec);

/// Expected Serendipity dimension by the Arnold-Awanou formula (for tests).
[[nodiscard]] int serendipityDim(int ndim, int p);

}  // namespace vdg
