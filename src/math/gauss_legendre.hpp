#pragma once
// Gauss-Legendre quadrature rules on [-1,1].
//
// These rules are used only at *setup* time: to evaluate (exactly, since the
// integrands are polynomials of known degree) the 1-D building-block
// integrals from which every DG tensor is assembled, and to project initial
// conditions. The runtime update path of the modal solver performs no
// quadrature whatsoever (see tensors/).

#include <cstddef>
#include <vector>

namespace vdg {

/// A 1-D quadrature rule: sum_i weight[i] * g(node[i]) integrates g over
/// [-1,1] exactly when g is a polynomial of degree <= 2*n-1.
struct QuadRule {
  std::vector<double> nodes;
  std::vector<double> weights;

  [[nodiscard]] std::size_t size() const { return nodes.size(); }
};

/// Compute the n-point Gauss-Legendre rule by Newton iteration on the roots
/// of P_n. Accurate to ~1e-15 for n up to several hundred.
[[nodiscard]] QuadRule gauss_legendre(int n);

}  // namespace vdg
