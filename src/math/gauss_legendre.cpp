#include "math/gauss_legendre.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace vdg {

QuadRule gauss_legendre(int n) {
  assert(n >= 1);
  QuadRule rule;
  rule.nodes.resize(static_cast<std::size_t>(n));
  rule.weights.resize(static_cast<std::size_t>(n));

  // Roots are symmetric about 0; solve for the upper half.
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    // Chebyshev-like initial guess for the i-th root of P_n.
    double x = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = pk;
      }
      dp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-16) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.nodes[static_cast<std::size_t>(i)] = -x;
    rule.weights[static_cast<std::size_t>(i)] = w;
    rule.nodes[static_cast<std::size_t>(n - 1 - i)] = x;
    rule.weights[static_cast<std::size_t>(n - 1 - i)] = w;
  }
  if (n % 2 == 1) rule.nodes[static_cast<std::size_t>(n / 2)] = 0.0;
  return rule;
}

}  // namespace vdg
