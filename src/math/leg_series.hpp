#pragma once
// Sparse multivariate series in products of orthonormal Legendre
// polynomials: g(eta) = sum_a coeff[a] * prod_i psi_{a_i}(eta_i).
//
// This is the setup-time "computer algebra" layer: addition, scaling and
// *exact* multiplication (via the 1-D linearization psi_a psi_b =
// sum_c T3(a,b,c) psi_c) let us build the polynomial phase-space fluxes and
// verify tensors symbolically. Nothing in this file runs in the per-cell
// update path.

#include <unordered_map>

#include "math/multi_index.hpp"

namespace vdg {

class LegSeries {
 public:
  using Map = std::unordered_map<MultiIndex, double, MultiIndexHash>;

  explicit LegSeries(int ndim) : ndim_(ndim) {}

  /// The constant function c (note psi_0 = 1/sqrt(2) per dimension).
  static LegSeries constant(int ndim, double c);

  /// The coordinate function eta_d on the reference cell.
  static LegSeries coordinate(int ndim, int d);

  [[nodiscard]] int ndim() const { return ndim_; }
  [[nodiscard]] const Map& coeffs() const { return c_; }
  [[nodiscard]] double coeff(const MultiIndex& a) const;

  void addTerm(const MultiIndex& a, double c);

  LegSeries& operator+=(const LegSeries& o);
  LegSeries& operator*=(double s);
  [[nodiscard]] LegSeries operator+(const LegSeries& o) const;
  [[nodiscard]] LegSeries operator*(double s) const;

  /// Exact product (degrees add; uses 1-D triple-product linearization).
  [[nodiscard]] LegSeries multiply(const LegSeries& o) const;

  /// Partial derivative with respect to eta_d (exact).
  [[nodiscard]] LegSeries derivative(int d) const;

  /// Evaluate at a point eta (each component in [-1,1]).
  [[nodiscard]] double eval(const double* eta) const;

  /// Integral over the reference cell [-1,1]^ndim.
  [[nodiscard]] double integral() const;

  /// Drop terms with |coeff| below tol (numerical zeros from table algebra).
  void prune(double tol = 1e-13);

 private:
  int ndim_;
  Map c_;
};

}  // namespace vdg
