#pragma once
// Normalized Legendre polynomials and the exact 1-D integral tables from
// which all multi-dimensional DG tensors factorize.
//
// The orthonormal basis on [-1,1] is psi_k(x) = sqrt((2k+1)/2) P_k(x), so
// that  \int psi_a psi_b dx = delta_ab.  Every modal basis function used by
// the solver is a product of psi's (see basis/), hence every volume/surface
// integral of products of basis functions factorizes into the 1-D integrals
// tabulated here. They are computed once, exactly (Gauss-Legendre of
// sufficient order applied to polynomials), which is what makes the scheme
// alias-free.

#include <vector>

namespace vdg {

/// Highest per-direction polynomial degree supported by the tables.
/// p<=3 bases with quadratic flux nonlinearities need at most ~3*max_p, and
/// 12 leaves generous headroom for moments of |v|^2 and emitted kernels.
inline constexpr int kMaxLegendreDegree = 12;

/// P_k(x), unnormalized Legendre polynomial (three-term recurrence).
[[nodiscard]] double legendreP(int k, double x);

/// d/dx P_k(x).
[[nodiscard]] double legendrePDeriv(int k, double x);

/// psi_k(x) = sqrt((2k+1)/2) P_k(x), the L2-orthonormal Legendre polynomial.
[[nodiscard]] double legendrePsi(int k, double x);

/// d/dx psi_k(x).
[[nodiscard]] double legendrePsiDeriv(int k, double x);

/// Exact 1-D integral tables over [-1,1] for the orthonormal psi family.
/// Singleton; thread-safe after first use.
class LegendreTables {
 public:
  static const LegendreTables& instance();

  /// T3(a,b,c) = \int psi_a psi_b psi_c dx  ("1-D Gaunt coefficient").
  [[nodiscard]] double trip(int a, int b, int c) const;

  /// D3(a,b,c) = \int psi_a' psi_b psi_c dx.
  [[nodiscard]] double dtrip(int a, int b, int c) const;

  /// D2(a,b) = \int psi_a' psi_b dx.
  [[nodiscard]] double dpair(int a, int b) const;

  /// M(a,m) = \int x^m psi_a dx  (for velocity moments, m <= 4).
  [[nodiscard]] double xmom(int a, int m) const;

  /// psi_a evaluated at +-1: psiEnd(a, s) with s in {-1, +1}.
  [[nodiscard]] double psiEnd(int a, int s) const;

 private:
  LegendreTables();

  static constexpr int kN = kMaxLegendreDegree + 1;
  static constexpr int kMom = 5;
  std::vector<double> trip_;   // kN^3
  std::vector<double> dtrip_;  // kN^3
  std::vector<double> dpair_;  // kN^2
  std::vector<double> xmom_;   // kN * kMom
  std::vector<double> end_;    // kN * 2
};

}  // namespace vdg
