#pragma once
// Minimal row-major dense matrix used by the quadrature-based baseline
// (the "nodal + linear-algebra-library" comparator of the paper), plus a
// small pivoted-LU solver for the tiny per-cell systems of the weak
// operations (weak division of moments, recovery coefficients, conservation
// corrections). The modal update loop itself never touches these types — it
// is matrix-free by construction; the solves here are O(basis-size) setup
// or per-configuration-cell work.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace vdg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  [[nodiscard]] double operator()(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * cols_ + c];
  }
  [[nodiscard]] double& operator()(int r, int c) {
    return a_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// y = A x  (y must not alias x).
  void matvec(std::span<const double> x, std::span<double> y) const {
    assert(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_);
    const double* row = a_.data();
    for (int r = 0; r < rows_; ++r, row += cols_) {
      double s = 0.0;
      for (int c = 0; c < cols_; ++c) s += row[c] * x[static_cast<std::size_t>(c)];
      y[static_cast<std::size_t>(r)] = s;
    }
  }

  /// y += A x.
  void matvecAdd(std::span<const double> x, std::span<double> y) const {
    assert(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_);
    const double* row = a_.data();
    for (int r = 0; r < rows_; ++r, row += cols_) {
      double s = 0.0;
      for (int c = 0; c < cols_; ++c) s += row[c] * x[static_cast<std::size_t>(c)];
      y[static_cast<std::size_t>(r)] += s;
    }
  }

  /// Number of stored entries (for op-count accounting in benchmarks).
  [[nodiscard]] std::size_t entryCount() const { return a_.size(); }

  void setZero() {
    for (double& v : a_) v = 0.0;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> a_;
};

/// LU factorization with partial pivoting of a small square matrix.
/// Deterministic (pivot choice depends only on the data), so per-cell
/// solves are bitwise reproducible across threading/rank decompositions.
/// Reusable: factorFrom() copy-assigns into existing storage, so a hoisted
/// solver refactors per cell without heap traffic.
class LuSolver {
 public:
  LuSolver() = default;
  explicit LuSolver(DenseMatrix a) : a_(std::move(a)) { factorInPlace(); }

  /// Re-factor from a (same-sized) matrix, reusing this solver's storage.
  void factorFrom(const DenseMatrix& a) {
    a_ = a;
    factorInPlace();
  }
  [[nodiscard]] bool singular() const { return singular_; }

  /// b := A^{-1} b (no-op when singular; check singular() first).
  void solve(std::span<double> b) const {
    assert(static_cast<int>(b.size()) == a_.rows());
    if (singular_) return;
    const int n = a_.rows();
    // Apply the full row permutation first (the stored multipliers are in
    // final row positions), then the triangular sweeps.
    for (int k = 0; k < n; ++k) {
      const int p = piv_[static_cast<std::size_t>(k)];
      if (p != k) {
        const double t = b[static_cast<std::size_t>(k)];
        b[static_cast<std::size_t>(k)] = b[static_cast<std::size_t>(p)];
        b[static_cast<std::size_t>(p)] = t;
      }
    }
    for (int k = 0; k < n; ++k)
      for (int r = k + 1; r < n; ++r)
        b[static_cast<std::size_t>(r)] -= a_(r, k) * b[static_cast<std::size_t>(k)];
    for (int k = n - 1; k >= 0; --k) {
      double s = b[static_cast<std::size_t>(k)];
      for (int c = k + 1; c < n; ++c) s -= a_(k, c) * b[static_cast<std::size_t>(c)];
      b[static_cast<std::size_t>(k)] = s / a_(k, k);
    }
  }

 private:
  void factorInPlace() {
    assert(a_.rows() == a_.cols());
    const int n = a_.rows();
    piv_.resize(static_cast<std::size_t>(n));
    singular_ = false;
    for (int k = 0; k < n; ++k) {
      int p = k;
      for (int r = k + 1; r < n; ++r)
        if (std::abs(a_(r, k)) > std::abs(a_(p, k))) p = r;
      piv_[static_cast<std::size_t>(k)] = p;
      if (p != k)
        for (int c = 0; c < n; ++c) {
          const double t = a_(k, c);
          a_(k, c) = a_(p, c);
          a_(p, c) = t;
        }
      const double d = a_(k, k);
      if (d == 0.0 || !std::isfinite(d)) {
        singular_ = true;
        return;
      }
      for (int r = k + 1; r < n; ++r) {
        const double m = a_(r, k) / d;
        a_(r, k) = m;
        for (int c = k + 1; c < n; ++c) a_(r, c) -= m * a_(k, c);
      }
    }
  }

  DenseMatrix a_;
  std::vector<int> piv_;
  bool singular_ = false;
};

}  // namespace vdg
