#pragma once
// Minimal row-major dense matrix used by the quadrature-based baseline
// (the "nodal + linear-algebra-library" comparator of the paper). The modal
// solver never touches this type — it is matrix-free by construction.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace vdg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  [[nodiscard]] double operator()(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * cols_ + c];
  }
  [[nodiscard]] double& operator()(int r, int c) {
    return a_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// y = A x  (y must not alias x).
  void matvec(std::span<const double> x, std::span<double> y) const {
    assert(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_);
    const double* row = a_.data();
    for (int r = 0; r < rows_; ++r, row += cols_) {
      double s = 0.0;
      for (int c = 0; c < cols_; ++c) s += row[c] * x[static_cast<std::size_t>(c)];
      y[static_cast<std::size_t>(r)] = s;
    }
  }

  /// y += A x.
  void matvecAdd(std::span<const double> x, std::span<double> y) const {
    assert(static_cast<int>(x.size()) == cols_ && static_cast<int>(y.size()) == rows_);
    const double* row = a_.data();
    for (int r = 0; r < rows_; ++r, row += cols_) {
      double s = 0.0;
      for (int c = 0; c < cols_; ++c) s += row[c] * x[static_cast<std::size_t>(c)];
      y[static_cast<std::size_t>(r)] += s;
    }
  }

  /// Number of stored entries (for op-count accounting in benchmarks).
  [[nodiscard]] std::size_t entryCount() const { return a_.size(); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> a_;
};

}  // namespace vdg
