#include "math/leg_series.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "math/legendre.hpp"

namespace vdg {

LegSeries LegSeries::constant(int ndim, double c) {
  LegSeries s(ndim);
  // 1 = prod_i sqrt(2) psi_0(eta_i)  =>  coefficient 2^{ndim/2} on mode 0.
  s.addTerm(MultiIndex{}, c * std::pow(2.0, 0.5 * ndim));
  return s;
}

LegSeries LegSeries::coordinate(int ndim, int d) {
  assert(d >= 0 && d < ndim);
  LegSeries s(ndim);
  // eta_d = sqrt(2/3) psi_1(eta_d) * prod_{i != d} sqrt(2) psi_0(eta_i).
  MultiIndex a;
  a[d] = 1;
  s.addTerm(a, std::sqrt(2.0 / 3.0) * std::pow(2.0, 0.5 * (ndim - 1)));
  return s;
}

double LegSeries::coeff(const MultiIndex& a) const {
  const auto it = c_.find(a);
  return it == c_.end() ? 0.0 : it->second;
}

void LegSeries::addTerm(const MultiIndex& a, double c) {
  if (c == 0.0) return;
  c_[a] += c;
}

LegSeries& LegSeries::operator+=(const LegSeries& o) {
  assert(ndim_ == o.ndim_);
  for (const auto& [a, c] : o.c_) c_[a] += c;
  return *this;
}

LegSeries& LegSeries::operator*=(double s) {
  for (auto& [a, c] : c_) c *= s;
  return *this;
}

LegSeries LegSeries::operator+(const LegSeries& o) const {
  LegSeries r = *this;
  r += o;
  return r;
}

LegSeries LegSeries::operator*(double s) const {
  LegSeries r = *this;
  r *= s;
  return r;
}

LegSeries LegSeries::multiply(const LegSeries& o) const {
  assert(ndim_ == o.ndim_);
  const auto& tab = LegendreTables::instance();
  LegSeries out(ndim_);
  for (const auto& [a, ca] : c_) {
    for (const auto& [b, cb] : o.c_) {
      // Expand the product one dimension at a time:
      //   psi_{a_d} psi_{b_d} = sum_{c_d} T3(a_d, b_d, c_d) psi_{c_d}.
      std::vector<std::pair<MultiIndex, double>> partial{{MultiIndex{}, ca * cb}};
      for (int d = 0; d < ndim_; ++d) {
        std::vector<std::pair<MultiIndex, double>> next;
        next.reserve(partial.size() * 4);
        const int ad = a[d], bd = b[d];
        for (int cd = std::abs(ad - bd); cd <= ad + bd; ++cd) {
          if (cd > kMaxLegendreDegree) break;
          const double t = tab.trip(ad, bd, cd);
          if (std::abs(t) < 1e-15) continue;
          for (const auto& [m, w] : partial) {
            MultiIndex m2 = m;
            m2[d] = cd;
            next.emplace_back(m2, w * t);
          }
        }
        partial = std::move(next);
      }
      for (const auto& [m, w] : partial) out.c_[m] += w;
    }
  }
  out.prune();
  return out;
}

LegSeries LegSeries::derivative(int d) const {
  assert(d >= 0 && d < ndim_);
  const auto& tab = LegendreTables::instance();
  LegSeries out(ndim_);
  for (const auto& [a, ca] : c_) {
    const int ad = a[d];
    // psi_ad' = sum_{b < ad} <psi_b, psi_ad'> psi_b = sum_b dpair(ad, b) psi_b.
    for (int b = 0; b < ad; ++b) {
      const double w = tab.dpair(ad, b);
      if (std::abs(w) < 1e-15) continue;
      MultiIndex m = a;
      m[d] = b;
      out.c_[m] += ca * w;
    }
  }
  out.prune();
  return out;
}

double LegSeries::eval(const double* eta) const {
  double s = 0.0;
  for (const auto& [a, ca] : c_) {
    double term = ca;
    for (int d = 0; d < ndim_; ++d) term *= legendrePsi(a[d], eta[d]);
    s += term;
  }
  return s;
}

double LegSeries::integral() const {
  // Only the all-zero mode survives: int psi_0 = sqrt(2) per dimension.
  return coeff(MultiIndex{}) * std::pow(2.0, 0.5 * ndim_);
}

void LegSeries::prune(double tol) {
  for (auto it = c_.begin(); it != c_.end();) {
    if (std::abs(it->second) < tol)
      it = c_.erase(it);
    else
      ++it;
  }
}

}  // namespace vdg
