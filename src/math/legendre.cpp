#include "math/legendre.hpp"

#include <cassert>
#include <cmath>

#include "math/gauss_legendre.hpp"

namespace vdg {

double legendreP(int k, double x) {
  assert(k >= 0);
  if (k == 0) return 1.0;
  if (k == 1) return x;
  double p0 = 1.0, p1 = x;
  for (int j = 2; j <= k; ++j) {
    const double pj = ((2.0 * j - 1.0) * x * p1 - (j - 1.0) * p0) / j;
    p0 = p1;
    p1 = pj;
  }
  return p1;
}

double legendrePDeriv(int k, double x) {
  if (k == 0) return 0.0;
  // (1-x^2) P_k' = k (P_{k-1} - x P_k); at |x|=1 use the closed form.
  if (std::abs(1.0 - x * x) < 1e-14) {
    const double sign = (x > 0.0) ? 1.0 : ((k % 2 == 0) ? -1.0 : 1.0);
    return sign * 0.5 * k * (k + 1.0);
  }
  return k * (legendreP(k - 1, x) - x * legendreP(k, x)) / (1.0 - x * x);
}

double legendrePsi(int k, double x) {
  return std::sqrt((2.0 * k + 1.0) / 2.0) * legendreP(k, x);
}

double legendrePsiDeriv(int k, double x) {
  return std::sqrt((2.0 * k + 1.0) / 2.0) * legendrePDeriv(k, x);
}

const LegendreTables& LegendreTables::instance() {
  static const LegendreTables tables;
  return tables;
}

LegendreTables::LegendreTables() {
  // 24-point Gauss-Legendre integrates polynomials up to degree 47 exactly;
  // the largest integrand degree here is 3*kMaxLegendreDegree = 36.
  const QuadRule q = gauss_legendre(24);
  const auto nq = q.size();

  // Pre-evaluate psi and psi' at all nodes.
  std::vector<double> psi(kN * nq), dpsi(kN * nq);
  for (int a = 0; a < kN; ++a) {
    for (std::size_t i = 0; i < nq; ++i) {
      psi[static_cast<std::size_t>(a) * nq + i] = legendrePsi(a, q.nodes[i]);
      dpsi[static_cast<std::size_t>(a) * nq + i] =
          legendrePsiDeriv(a, q.nodes[i]);
    }
  }
  const auto at = [&](const std::vector<double>& v, int a, std::size_t i) {
    return v[static_cast<std::size_t>(a) * nq + i];
  };

  trip_.assign(static_cast<std::size_t>(kN) * kN * kN, 0.0);
  dtrip_.assign(static_cast<std::size_t>(kN) * kN * kN, 0.0);
  dpair_.assign(static_cast<std::size_t>(kN) * kN, 0.0);
  xmom_.assign(static_cast<std::size_t>(kN) * kMom, 0.0);
  end_.assign(static_cast<std::size_t>(kN) * 2, 0.0);

  for (int a = 0; a < kN; ++a) {
    for (int b = 0; b < kN; ++b) {
      double sp = 0.0;
      for (std::size_t i = 0; i < nq; ++i)
        sp += q.weights[i] * at(dpsi, a, i) * at(psi, b, i);
      dpair_[static_cast<std::size_t>(a) * kN + b] = sp;
      for (int c = 0; c < kN; ++c) {
        double st = 0.0, sd = 0.0;
        for (std::size_t i = 0; i < nq; ++i) {
          const double bc = at(psi, b, i) * at(psi, c, i);
          st += q.weights[i] * at(psi, a, i) * bc;
          sd += q.weights[i] * at(dpsi, a, i) * bc;
        }
        const std::size_t idx =
            (static_cast<std::size_t>(a) * kN + b) * kN + c;
        trip_[idx] = st;
        dtrip_[idx] = sd;
      }
    }
    for (int m = 0; m < kMom; ++m) {
      double s = 0.0;
      for (std::size_t i = 0; i < nq; ++i) {
        double xm = 1.0;
        for (int j = 0; j < m; ++j) xm *= q.nodes[i];
        s += q.weights[i] * xm * at(psi, a, i);
      }
      xmom_[static_cast<std::size_t>(a) * kMom + m] = s;
    }
    end_[static_cast<std::size_t>(a) * 2 + 0] = legendrePsi(a, -1.0);
    end_[static_cast<std::size_t>(a) * 2 + 1] = legendrePsi(a, +1.0);
  }
}

double LegendreTables::trip(int a, int b, int c) const {
  assert(a >= 0 && a < kN && b >= 0 && b < kN && c >= 0 && c < kN);
  return trip_[(static_cast<std::size_t>(a) * kN + b) * kN + c];
}

double LegendreTables::dtrip(int a, int b, int c) const {
  assert(a >= 0 && a < kN && b >= 0 && b < kN && c >= 0 && c < kN);
  return dtrip_[(static_cast<std::size_t>(a) * kN + b) * kN + c];
}

double LegendreTables::dpair(int a, int b) const {
  assert(a >= 0 && a < kN && b >= 0 && b < kN);
  return dpair_[static_cast<std::size_t>(a) * kN + b];
}

double LegendreTables::xmom(int a, int m) const {
  assert(a >= 0 && a < kN && m >= 0 && m < kMom);
  return xmom_[static_cast<std::size_t>(a) * kMom + m];
}

double LegendreTables::psiEnd(int a, int s) const {
  assert(a >= 0 && a < kN && (s == -1 || s == 1));
  return end_[static_cast<std::size_t>(a) * 2 + (s == 1 ? 1 : 0)];
}

}  // namespace vdg
