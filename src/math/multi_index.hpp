#pragma once
// Small fixed-capacity multi-index used for basis-function degrees and for
// grid cell coordinates in up to 6-D phase space.

#include <array>
#include <cassert>
#include <cstddef>
#include <functional>

namespace vdg {

/// Maximum phase-space dimensionality (3 configuration + 3 velocity).
inline constexpr int kMaxDim = 6;

/// A multi-index of per-dimension integer entries (degrees or cell indices).
/// Only the first `ndim` entries are meaningful; the rest are zero.
struct MultiIndex {
  std::array<int, kMaxDim> v{};

  constexpr int operator[](int d) const { return v[static_cast<std::size_t>(d)]; }
  constexpr int& operator[](int d) { return v[static_cast<std::size_t>(d)]; }

  friend constexpr bool operator==(const MultiIndex&, const MultiIndex&) = default;

  /// Total degree |a| = sum_i a_i over the first ndim entries.
  [[nodiscard]] int totalDegree(int ndim) const {
    int s = 0;
    for (int d = 0; d < ndim; ++d) s += v[static_cast<std::size_t>(d)];
    return s;
  }

  /// Max per-direction degree over the first ndim entries.
  [[nodiscard]] int maxDegree(int ndim) const {
    int m = 0;
    for (int d = 0; d < ndim; ++d) m = v[static_cast<std::size_t>(d)] > m ? v[static_cast<std::size_t>(d)] : m;
    return m;
  }

  /// Superlinear degree (Arnold-Awanou): sum of entries that are >= 2.
  /// This is the selection rule of the Serendipity family.
  [[nodiscard]] int superlinearDegree(int ndim) const {
    int s = 0;
    for (int d = 0; d < ndim; ++d) {
      const int a = v[static_cast<std::size_t>(d)];
      if (a >= 2) s += a;
    }
    return s;
  }

  /// Copy with dimension d removed (for face bases / restrictions).
  [[nodiscard]] MultiIndex dropDim(int d, int ndim) const {
    assert(d >= 0 && d < ndim);
    MultiIndex out;
    int j = 0;
    for (int i = 0; i < ndim; ++i)
      if (i != d) out[j++] = v[static_cast<std::size_t>(i)];
    return out;
  }

  /// Copy with value `val` inserted at dimension d (inverse of dropDim).
  [[nodiscard]] MultiIndex insertDim(int d, int val, int ndimAfter) const {
    assert(d >= 0 && d < ndimAfter);
    MultiIndex out;
    int j = 0;
    for (int i = 0; i < ndimAfter; ++i)
      out[i] = (i == d) ? val : v[static_cast<std::size_t>(j++)];
    return out;
  }
};

/// Number of index tuples in the box [0, hi[d]) for d < nd.
inline std::size_t boxSize(int nd, const int* hi) {
  std::size_t n = 1;
  for (int d = 0; d < nd; ++d) n *= static_cast<std::size_t>(hi[d]);
  return n;
}

/// Invoke fn(idx) for each linear index in [begin, end) of the box
/// [0, hi[d]) for d < nd, in odometer order (dimension 0 fastest) — the
/// restriction of the full forEachCell/forEachIdx ordering to a contiguous
/// chunk, which is what the ThreadExec-chunked per-cell loops partition.
template <typename Fn>
void forEachIndexInRange(int nd, const int* hi, std::size_t begin, std::size_t end, Fn fn) {
  if (begin >= end) return;  // also guards hi[d]==0 boxes (no 0 % 0 below)
  MultiIndex idx;
  std::size_t rem = begin;
  for (int d = 0; d < nd; ++d) {
    idx[d] = static_cast<int>(rem % static_cast<std::size_t>(hi[d]));
    rem /= static_cast<std::size_t>(hi[d]);
  }
  for (std::size_t r = begin; r < end; ++r) {
    fn(idx);
    int d = 0;
    while (d < nd && ++idx[d] >= hi[d]) idx[d++] = 0;
  }
}

struct MultiIndexHash {
  std::size_t operator()(const MultiIndex& m) const {
    std::size_t h = 1469598103934665603ull;
    for (int x : m.v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace vdg
