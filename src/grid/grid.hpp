#pragma once
// Structured Cartesian grids in up to 6-D phase space, and DG coefficient
// fields over them (cell-major storage with a one-cell ghost layer, which is
// all a DG scheme needs for its surface terms).

#include <array>
#include <cassert>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "math/multi_index.hpp"

namespace vdg {

/// A uniform Cartesian grid. For phase-space grids the first cdim
/// dimensions are configuration space and the rest velocity space.
struct Grid {
  int ndim = 0;
  std::array<int, kMaxDim> cells{};
  std::array<double, kMaxDim> lower{};
  std::array<double, kMaxDim> upper{};

  [[nodiscard]] double dx(int d) const {
    return (upper[static_cast<std::size_t>(d)] - lower[static_cast<std::size_t>(d)]) /
           cells[static_cast<std::size_t>(d)];
  }

  /// Center coordinate of cell i (0-based) along dimension d.
  [[nodiscard]] double cellCenter(int d, int i) const {
    return lower[static_cast<std::size_t>(d)] + (i + 0.5) * dx(d);
  }

  [[nodiscard]] std::size_t numCells() const {
    std::size_t n = 1;
    for (int d = 0; d < ndim; ++d) n *= static_cast<std::size_t>(cells[static_cast<std::size_t>(d)]);
    return n;
  }

  /// Phase-space grid as the tensor product of a configuration grid and a
  /// velocity grid.
  [[nodiscard]] static Grid phase(const Grid& conf, const Grid& vel);

  /// Convenience constructor.
  [[nodiscard]] static Grid make(std::initializer_list<int> cells,
                                 std::initializer_list<double> lower,
                                 std::initializer_list<double> upper);
};

/// Invoke fn(idx) for every interior cell of the grid (odometer order:
/// dimension 0 fastest).
void forEachCell(const Grid& grid, const std::function<void(const MultiIndex&)>& fn);

/// A DG coefficient field: ncomp doubles per cell, stored cell-major over
/// the grid extended by `nghost` ghost cells per side in every dimension.
class Field {
 public:
  Field() = default;
  Field(const Grid& grid, int ncomp, int nghost = 1);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] int ncomp() const { return ncomp_; }
  [[nodiscard]] int nghost() const { return nghost_; }

  /// Pointer to the coefficients of cell idx; ghost cells are addressed
  /// with indices in [-nghost, cells+nghost).
  [[nodiscard]] double* at(const MultiIndex& idx) { return data_.data() + offset(idx); }
  [[nodiscard]] const double* at(const MultiIndex& idx) const {
    return data_.data() + offset(idx);
  }
  [[nodiscard]] std::span<double> cell(const MultiIndex& idx) {
    return {at(idx), static_cast<std::size_t>(ncomp_)};
  }
  [[nodiscard]] std::span<const double> cell(const MultiIndex& idx) const {
    return {at(idx), static_cast<std::size_t>(ncomp_)};
  }

  [[nodiscard]] std::span<double> raw() { return data_; }
  [[nodiscard]] std::span<const double> raw() const { return data_; }

  void setZero();

  /// out = a*this (interior and ghosts).
  void scale(double a);
  /// this += a * other (element-wise over the whole extended array).
  void axpy(double a, const Field& other);
  /// this = a*x + b*y (shapes must match).
  void combine(double a, const Field& x, double b, const Field& y);
  void copyFrom(const Field& other);

  /// Fill ghost layers of dimension d by periodic wrap of interior data.
  void syncPeriodic(int d);
  /// Fill ghost layers of dimension d with zeros (zero-flux helper).
  void zeroGhost(int d);
  /// Fill ghost layers of dimension d by copying the adjacent interior cell.
  void copyGhost(int d);

 private:
  [[nodiscard]] std::size_t offset(const MultiIndex& idx) const {
    std::size_t o = 0;
    for (int d = 0; d < grid_.ndim; ++d) {
      const int i = idx[d] + nghost_;
      assert(i >= 0 && i < ext_[static_cast<std::size_t>(d)]);
      o += static_cast<std::size_t>(i) * stride_[static_cast<std::size_t>(d)];
    }
    return o * static_cast<std::size_t>(ncomp_);
  }

  /// Iterate all ghost cells of dim d, giving the ghost index and its
  /// periodic image.
  void forEachGhost(int d, const std::function<void(const MultiIndex& ghost,
                                                    const MultiIndex& image)>& fn) const;

  Grid grid_;
  int ncomp_ = 0;
  int nghost_ = 0;
  std::array<int, kMaxDim> ext_{};
  std::array<std::size_t, kMaxDim> stride_{};
  std::vector<double> data_;
};

}  // namespace vdg
