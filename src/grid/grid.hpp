#pragma once
// Structured Cartesian grids in up to 6-D phase space, and DG coefficient
// fields over them (cell-major storage with a one-cell ghost layer, which is
// all a DG scheme needs for its surface terms).
//
// A Grid may be a *subgrid*: a contiguous window of a larger parent grid
// along one or more dimensions (the rank-local grids of the distributed
// layer). A subgrid remembers the parent's extent and its own index offset,
// and performs all coordinate arithmetic (dx, cellCenter) in the parent's
// terms — so a rank-local updater produces coefficients that are
// *bit-for-bit* identical to the same cells of a global serial run.

#include <array>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "math/multi_index.hpp"

namespace vdg {

/// A uniform Cartesian grid. For phase-space grids the first cdim
/// dimensions are configuration space and the rest velocity space.
struct Grid {
  int ndim = 0;
  std::array<int, kMaxDim> cells{};
  std::array<double, kMaxDim> lower{};
  std::array<double, kMaxDim> upper{};

  // Subgrid support: when parentCells[d] > 0, dimension d is the window
  // [offset[d], offset[d] + cells[d]) of a parent grid with parentCells[d]
  // cells spanning [parentLower[d], parentUpper[d]]; dx and cellCenter then
  // evaluate the *parent's* expressions so local coordinate arithmetic is
  // bitwise identical to the parent's. parentCells[d] == 0 (the default)
  // means dimension d is not windowed.
  std::array<int, kMaxDim> parentCells{};
  std::array<int, kMaxDim> offset{};  ///< parent index of local cell 0
  std::array<double, kMaxDim> parentLower{};
  std::array<double, kMaxDim> parentUpper{};

  [[nodiscard]] double dx(int d) const {
    const auto s = static_cast<std::size_t>(d);
    if (parentCells[s] > 0) return (parentUpper[s] - parentLower[s]) / parentCells[s];
    return (upper[s] - lower[s]) / cells[s];
  }

  /// Center coordinate of cell i (0-based, local) along dimension d. For a
  /// subgrid this is parentLower + (offset + i + 0.5) * dx — the integer
  /// shift happens before the floating arithmetic, so the value matches the
  /// parent grid's cellCenter(d, offset + i) exactly.
  [[nodiscard]] double cellCenter(int d, int i) const {
    const auto s = static_cast<std::size_t>(d);
    const double lo = parentCells[s] > 0 ? parentLower[s] : lower[s];
    return lo + (offset[s] + i + 0.5) * dx(d);
  }

  [[nodiscard]] std::size_t numCells() const {
    std::size_t n = 1;
    for (int d = 0; d < ndim; ++d) n *= static_cast<std::size_t>(cells[static_cast<std::size_t>(d)]);
    return n;
  }

  /// True when any dimension is a window of a parent grid.
  [[nodiscard]] bool isSubgrid() const {
    for (int d = 0; d < ndim; ++d)
      if (parentCells[static_cast<std::size_t>(d)] > 0) return true;
    return false;
  }

  /// Restrict dimension d to the window [start, start + count) of this
  /// grid's cells, keeping coordinate arithmetic bit-identical to this
  /// grid's (see the subgrid fields above). Composable: a subgrid of a
  /// subgrid accumulates offsets against the original parent.
  [[nodiscard]] Grid subgrid(int d, int start, int count) const;

  /// The grid this subgrid is a window of (windowed dimensions restored to
  /// their parent extent; self for a non-subgrid).
  [[nodiscard]] Grid parent() const;

  /// Phase-space grid as the tensor product of a configuration grid and a
  /// velocity grid.
  [[nodiscard]] static Grid phase(const Grid& conf, const Grid& vel);

  /// Convenience constructor.
  [[nodiscard]] static Grid make(std::initializer_list<int> cells,
                                 std::initializer_list<double> lower,
                                 std::initializer_list<double> upper);
};

/// Invoke fn(idx) for every interior cell of the grid (odometer order:
/// dimension 0 fastest). Templated on the callable so the per-cell body
/// stays inlinable in the hot loops (Maxwell volume/surface, moments,
/// projection) — no type erasure, no indirect call per cell.
template <typename Fn>
void forEachCell(const Grid& grid, const Fn& fn) {
  forEachIndexInRange(grid.ndim, grid.cells.data(), 0, grid.numCells(), fn);
}

/// A DG coefficient field: ncomp doubles per cell, stored cell-major over
/// the grid extended by `nghost` ghost cells per side in every dimension.
class Field {
 public:
  Field() = default;
  Field(const Grid& grid, int ncomp, int nghost = 1);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] int ncomp() const { return ncomp_; }
  [[nodiscard]] int nghost() const { return nghost_; }

  /// Pointer to the coefficients of cell idx; ghost cells are addressed
  /// with indices in [-nghost, cells+nghost).
  [[nodiscard]] double* at(const MultiIndex& idx) { return data_.data() + offset(idx); }
  [[nodiscard]] const double* at(const MultiIndex& idx) const {
    return data_.data() + offset(idx);
  }
  [[nodiscard]] std::span<double> cell(const MultiIndex& idx) {
    return {at(idx), static_cast<std::size_t>(ncomp_)};
  }
  [[nodiscard]] std::span<const double> cell(const MultiIndex& idx) const {
    return {at(idx), static_cast<std::size_t>(ncomp_)};
  }

  [[nodiscard]] std::span<double> raw() { return data_; }
  [[nodiscard]] std::span<const double> raw() const { return data_; }

  void setZero();

  /// out = a*this (interior and ghosts).
  void scale(double a);
  /// this += a * other (element-wise over the whole extended array).
  void axpy(double a, const Field& other);
  /// this = a*x + b*y (shapes must match).
  void combine(double a, const Field& x, double b, const Field& y);
  void copyFrom(const Field& other);

  // --- contiguous halo slabs (the unit of inter-rank ghost traffic).
  //
  // A "slab" of dimension d is the nghost-thick layer of cells adjacent to
  // one boundary of d, spanning the *extended* box (interior + ghosts) of
  // every other dimension — exactly the cells a DG neighbor needs,
  // including the corner ghosts filled by earlier-dimension syncs. Pack
  // and unpack share one iteration order, so a buffer packed on one rank
  // unpacks correctly on its neighbor (whose transverse extents match by
  // construction of the Cartesian decomposition).

  /// Doubles in one face slab of dimension d.
  [[nodiscard]] std::size_t ghostSlabSize(int d) const;

  /// Pack the *interior* slab adjacent to the lower (side == -1) or upper
  /// (side == +1) boundary of dimension d into buf (size ghostSlabSize(d)).
  void packGhost(int d, int side, std::span<double> buf) const;

  /// Unpack a received slab into the *ghost* layer on `side` of dimension
  /// d. The periodic/neighbor pairing: a rank's lower ghost layer receives
  /// its lower neighbor's packGhost(d, +1) slab, and vice versa (with the
  /// neighbor being the field itself, this is exactly a periodic wrap).
  void unpackGhost(int d, int side, std::span<const double> buf);

  /// Fill ghost layers of dimension d by periodic wrap of interior data —
  /// implemented as a self pack/unpack exchange, so the serial path and
  /// the distributed halo exchange share one slab code path.
  void syncPeriodic(int d);
  /// Fill ghost layers of dimension d with zeros (zero-flux helper).
  void zeroGhost(int d);
  /// Fill ghost layers of dimension d by copying the adjacent interior cell.
  void copyGhost(int d);

  /// Invoke fn(ghostIdx) for every ghost cell of the lower (side == -1) or
  /// upper (side == +1) boundary of dimension d, spanning the *extended*
  /// box of every other dimension — the same cells a halo slab covers.
  /// This is the fill seam of the physical boundary conditions (src/bc/):
  /// a BoundaryCondition decides per ghost cell what interior data (if
  /// any) to mirror or extrapolate into it.
  template <typename Fn>
  void forEachBoundaryGhost(int d, int side, const Fn& fn) const {
    forEachSlabCell(d, side, /*ghost=*/true,
                    [&](const MultiIndex& idx, std::size_t /*off*/) { fn(idx); });
  }

 private:
  [[nodiscard]] std::size_t offset(const MultiIndex& idx) const {
    std::size_t o = 0;
    for (int d = 0; d < grid_.ndim; ++d) {
      const int i = idx[d] + nghost_;
      assert(i >= 0 && i < ext_[static_cast<std::size_t>(d)]);
      o += static_cast<std::size_t>(i) * stride_[static_cast<std::size_t>(d)];
    }
    return o * static_cast<std::size_t>(ncomp_);
  }

  /// Iterate all ghost cells of dim d, giving the ghost index and its
  /// periodic image (templated: the sync/zero/copy loops stay inlinable).
  template <typename Fn>
  void forEachGhost(int d, const Fn& fn) const {
    const int nd = grid_.ndim;
    const int nc = grid_.cells[static_cast<std::size_t>(d)];
    MultiIndex idx;
    for (int i = 0; i < nd; ++i) idx[i] = -nghost_;
    while (true) {
      for (int g = 1; g <= nghost_; ++g) {
        MultiIndex lo = idx, hi = idx;
        lo[d] = -g;
        hi[d] = nc - 1 + g;
        MultiIndex loImg = lo, hiImg = hi;
        loImg[d] = nc - g;
        hiImg[d] = g - 1;
        fn(lo, loImg);
        fn(hi, hiImg);
      }
      int k = 0;
      while (k < nd) {
        if (k == d) {
          ++k;
          continue;
        }
        if (++idx[k] < grid_.cells[static_cast<std::size_t>(k)] + nghost_) break;
        idx[k] = -nghost_;
        ++k;
      }
      if (k == nd) break;
    }
  }

  /// Iterate the cells of one face slab of dim d in the canonical pack
  /// order, giving the cell index and its doubles-offset into the buffer.
  /// ghost == false: the interior slab on `side`; true: the ghost slab.
  template <typename Fn>
  void forEachSlabCell(int d, int side, bool ghost, const Fn& fn) const {
    const int nd = grid_.ndim;
    const int nc = grid_.cells[static_cast<std::size_t>(d)];
    const int base = ghost ? (side < 0 ? -nghost_ : nc) : (side < 0 ? 0 : nc - nghost_);
    MultiIndex idx;
    for (int i = 0; i < nd; ++i) idx[i] = -nghost_;
    std::size_t off = 0;
    while (true) {
      for (int g = 0; g < nghost_; ++g) {
        idx[d] = base + g;
        fn(idx, off);
        off += static_cast<std::size_t>(ncomp_);
      }
      int k = 0;
      while (k < nd) {
        if (k == d) {
          ++k;
          continue;
        }
        if (++idx[k] < grid_.cells[static_cast<std::size_t>(k)] + nghost_) break;
        idx[k] = -nghost_;
        ++k;
      }
      if (k == nd) break;
    }
  }

  Grid grid_;
  int ncomp_ = 0;
  int nghost_ = 0;
  std::array<int, kMaxDim> ext_{};
  std::array<std::size_t, kMaxDim> stride_{};
  std::vector<double> data_;
};

}  // namespace vdg
