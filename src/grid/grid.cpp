#include "grid/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdg {

Grid Grid::phase(const Grid& conf, const Grid& vel) {
  if (conf.ndim + vel.ndim > kMaxDim)
    throw std::invalid_argument("Grid::phase: combined dimensionality exceeds 6");
  Grid g;
  g.ndim = conf.ndim + vel.ndim;
  for (int d = 0; d < conf.ndim; ++d) {
    g.cells[static_cast<std::size_t>(d)] = conf.cells[static_cast<std::size_t>(d)];
    g.lower[static_cast<std::size_t>(d)] = conf.lower[static_cast<std::size_t>(d)];
    g.upper[static_cast<std::size_t>(d)] = conf.upper[static_cast<std::size_t>(d)];
  }
  for (int d = 0; d < vel.ndim; ++d) {
    g.cells[static_cast<std::size_t>(conf.ndim + d)] = vel.cells[static_cast<std::size_t>(d)];
    g.lower[static_cast<std::size_t>(conf.ndim + d)] = vel.lower[static_cast<std::size_t>(d)];
    g.upper[static_cast<std::size_t>(conf.ndim + d)] = vel.upper[static_cast<std::size_t>(d)];
  }
  return g;
}

Grid Grid::make(std::initializer_list<int> cells, std::initializer_list<double> lower,
                std::initializer_list<double> upper) {
  if (cells.size() != lower.size() || cells.size() != upper.size() ||
      cells.size() > static_cast<std::size_t>(kMaxDim) || cells.size() == 0)
    throw std::invalid_argument("Grid::make: inconsistent dimension lists");
  Grid g;
  g.ndim = static_cast<int>(cells.size());
  std::copy(cells.begin(), cells.end(), g.cells.begin());
  std::copy(lower.begin(), lower.end(), g.lower.begin());
  std::copy(upper.begin(), upper.end(), g.upper.begin());
  for (int d = 0; d < g.ndim; ++d) {
    if (g.cells[static_cast<std::size_t>(d)] < 1 || g.dx(d) <= 0.0)
      throw std::invalid_argument("Grid::make: cells must be >= 1 and upper > lower");
  }
  return g;
}

void forEachCell(const Grid& grid, const std::function<void(const MultiIndex&)>& fn) {
  MultiIndex idx;
  while (true) {
    fn(idx);
    int d = 0;
    while (d < grid.ndim) {
      if (++idx[d] < grid.cells[static_cast<std::size_t>(d)]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == grid.ndim) break;
  }
}

Field::Field(const Grid& grid, int ncomp, int nghost)
    : grid_(grid), ncomp_(ncomp), nghost_(nghost) {
  std::size_t total = 1;
  for (int d = 0; d < grid_.ndim; ++d) {
    ext_[static_cast<std::size_t>(d)] = grid_.cells[static_cast<std::size_t>(d)] + 2 * nghost_;
    stride_[static_cast<std::size_t>(d)] = total;
    total *= static_cast<std::size_t>(ext_[static_cast<std::size_t>(d)]);
  }
  data_.assign(total * static_cast<std::size_t>(ncomp_), 0.0);
}

void Field::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Field::scale(double a) {
  for (double& v : data_) v *= a;
}

void Field::axpy(double a, const Field& other) {
  assert(data_.size() == other.data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * other.data_[i];
}

void Field::combine(double a, const Field& x, double b, const Field& y) {
  assert(data_.size() == x.data_.size() && data_.size() == y.data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = a * x.data_[i] + b * y.data_[i];
}

void Field::copyFrom(const Field& other) {
  assert(data_.size() == other.data_.size());
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

void Field::forEachGhost(
    int d, const std::function<void(const MultiIndex&, const MultiIndex&)>& fn) const {
  // Iterate the full extended index space of all other dimensions and the
  // ghost slabs of dimension d.
  const int nd = grid_.ndim;
  const int nc = grid_.cells[static_cast<std::size_t>(d)];
  MultiIndex idx;
  for (int i = 0; i < nd; ++i) idx[i] = -nghost_;
  while (true) {
    for (int g = 1; g <= nghost_; ++g) {
      MultiIndex lo = idx, hi = idx;
      lo[d] = -g;
      hi[d] = nc - 1 + g;
      MultiIndex loImg = lo, hiImg = hi;
      loImg[d] = nc - g;
      hiImg[d] = g - 1;
      fn(lo, loImg);
      fn(hi, hiImg);
    }
    int k = 0;
    while (k < nd) {
      if (k == d) {
        ++k;
        continue;
      }
      if (++idx[k] < grid_.cells[static_cast<std::size_t>(k)] + nghost_) break;
      idx[k] = -nghost_;
      ++k;
    }
    if (k == nd) break;
  }
}

void Field::syncPeriodic(int d) {
  forEachGhost(d, [this](const MultiIndex& ghost, const MultiIndex& image) {
    const double* src = at(image);
    double* dst = at(ghost);
    std::copy(src, src + ncomp_, dst);
  });
}

void Field::zeroGhost(int d) {
  forEachGhost(d, [this](const MultiIndex& ghost, const MultiIndex&) {
    double* dst = at(ghost);
    std::fill(dst, dst + ncomp_, 0.0);
  });
}

void Field::copyGhost(int d) {
  const int nc = grid_.cells[static_cast<std::size_t>(d)];
  forEachGhost(d, [this, d, nc](const MultiIndex& ghost, const MultiIndex&) {
    MultiIndex interior = ghost;
    interior[d] = ghost[d] < 0 ? 0 : nc - 1;
    const double* src = at(interior);
    double* dst = at(ghost);
    std::copy(src, src + ncomp_, dst);
  });
}

}  // namespace vdg
