#include "grid/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdg {

Grid Grid::subgrid(int d, int start, int count) const {
  const auto s = static_cast<std::size_t>(d);
  if (d < 0 || d >= ndim || start < 0 || count < 1 || start + count > cells[s])
    throw std::invalid_argument("Grid::subgrid: window out of range");
  Grid g = *this;
  if (g.parentCells[s] == 0) {
    g.parentCells[s] = cells[s];
    g.parentLower[s] = lower[s];
    g.parentUpper[s] = upper[s];
  }
  g.offset[s] += start;
  g.cells[s] = count;
  // Nominal local bounds (coordinate arithmetic uses the parent fields).
  const double pdx = g.dx(d);
  g.lower[s] = g.parentLower[s] + g.offset[s] * pdx;
  g.upper[s] = g.parentLower[s] + (g.offset[s] + count) * pdx;
  return g;
}

Grid Grid::parent() const {
  Grid g = *this;
  for (int d = 0; d < ndim; ++d) {
    const auto s = static_cast<std::size_t>(d);
    if (g.parentCells[s] == 0) continue;
    g.cells[s] = g.parentCells[s];
    g.lower[s] = g.parentLower[s];
    g.upper[s] = g.parentUpper[s];
    g.parentCells[s] = 0;
    g.offset[s] = 0;
    g.parentLower[s] = 0.0;
    g.parentUpper[s] = 0.0;
  }
  return g;
}

Grid Grid::phase(const Grid& conf, const Grid& vel) {
  if (conf.ndim + vel.ndim > kMaxDim)
    throw std::invalid_argument("Grid::phase: combined dimensionality exceeds 6");
  Grid g;
  g.ndim = conf.ndim + vel.ndim;
  const auto copyDim = [&g](const Grid& src, int from, int to) {
    const auto f = static_cast<std::size_t>(from);
    const auto t = static_cast<std::size_t>(to);
    g.cells[t] = src.cells[f];
    g.lower[t] = src.lower[f];
    g.upper[t] = src.upper[f];
    g.parentCells[t] = src.parentCells[f];
    g.offset[t] = src.offset[f];
    g.parentLower[t] = src.parentLower[f];
    g.parentUpper[t] = src.parentUpper[f];
  };
  for (int d = 0; d < conf.ndim; ++d) copyDim(conf, d, d);
  for (int d = 0; d < vel.ndim; ++d) copyDim(vel, d, conf.ndim + d);
  return g;
}

Grid Grid::make(std::initializer_list<int> cells, std::initializer_list<double> lower,
                std::initializer_list<double> upper) {
  if (cells.size() != lower.size() || cells.size() != upper.size() ||
      cells.size() > static_cast<std::size_t>(kMaxDim) || cells.size() == 0)
    throw std::invalid_argument("Grid::make: inconsistent dimension lists");
  Grid g;
  g.ndim = static_cast<int>(cells.size());
  std::copy(cells.begin(), cells.end(), g.cells.begin());
  std::copy(lower.begin(), lower.end(), g.lower.begin());
  std::copy(upper.begin(), upper.end(), g.upper.begin());
  for (int d = 0; d < g.ndim; ++d) {
    if (g.cells[static_cast<std::size_t>(d)] < 1 || g.dx(d) <= 0.0)
      throw std::invalid_argument("Grid::make: cells must be >= 1 and upper > lower");
  }
  return g;
}

Field::Field(const Grid& grid, int ncomp, int nghost)
    : grid_(grid), ncomp_(ncomp), nghost_(nghost) {
  std::size_t total = 1;
  for (int d = 0; d < grid_.ndim; ++d) {
    ext_[static_cast<std::size_t>(d)] = grid_.cells[static_cast<std::size_t>(d)] + 2 * nghost_;
    stride_[static_cast<std::size_t>(d)] = total;
    total *= static_cast<std::size_t>(ext_[static_cast<std::size_t>(d)]);
  }
  data_.assign(total * static_cast<std::size_t>(ncomp_), 0.0);
}

void Field::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Field::scale(double a) {
  for (double& v : data_) v *= a;
}

void Field::axpy(double a, const Field& other) {
  assert(data_.size() == other.data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * other.data_[i];
}

void Field::combine(double a, const Field& x, double b, const Field& y) {
  assert(data_.size() == x.data_.size() && data_.size() == y.data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = a * x.data_[i] + b * y.data_[i];
}

void Field::copyFrom(const Field& other) {
  assert(data_.size() == other.data_.size());
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

std::size_t Field::ghostSlabSize(int d) const {
  std::size_t n = static_cast<std::size_t>(nghost_) * static_cast<std::size_t>(ncomp_);
  for (int k = 0; k < grid_.ndim; ++k) {
    if (k == d) continue;
    n *= static_cast<std::size_t>(grid_.cells[static_cast<std::size_t>(k)] + 2 * nghost_);
  }
  return n;
}

void Field::packGhost(int d, int side, std::span<double> buf) const {
  assert(buf.size() >= ghostSlabSize(d));
  forEachSlabCell(d, side, /*ghost=*/false, [&](const MultiIndex& idx, std::size_t off) {
    const double* src = at(idx);
    std::copy(src, src + ncomp_, buf.data() + off);
  });
}

void Field::unpackGhost(int d, int side, std::span<const double> buf) {
  assert(buf.size() >= ghostSlabSize(d));
  forEachSlabCell(d, side, /*ghost=*/true, [&](const MultiIndex& idx, std::size_t off) {
    const double* src = buf.data() + off;
    std::copy(src, src + ncomp_, at(idx));
  });
}

void Field::syncPeriodic(int d) {
  // Self halo exchange: the lower ghost layer receives the upper interior
  // slab and vice versa — the same pack format and pairing the distributed
  // Communicator uses between neighboring ranks, so the serial and
  // rank-parallel ghost paths are one code path (and bitwise identical:
  // both are pure copies of the same cells). Scratch is thread_local: this
  // runs per slot per conf dim on every RHS evaluation, and capacity
  // retention keeps the hot path allocation-free after warmup (per thread,
  // since rank threads may sync concurrently).
  static thread_local std::vector<double> lo, hi;
  const std::size_t n = ghostSlabSize(d);
  if (lo.size() < n) lo.resize(n);
  if (hi.size() < n) hi.resize(n);
  packGhost(d, -1, lo);
  packGhost(d, +1, hi);
  unpackGhost(d, -1, hi);
  unpackGhost(d, +1, lo);
}

void Field::zeroGhost(int d) {
  forEachGhost(d, [this](const MultiIndex& ghost, const MultiIndex&) {
    double* dst = at(ghost);
    std::fill(dst, dst + ncomp_, 0.0);
  });
}

void Field::copyGhost(int d) {
  const int nc = grid_.cells[static_cast<std::size_t>(d)];
  forEachGhost(d, [this, d, nc](const MultiIndex& ghost, const MultiIndex&) {
    MultiIndex interior = ghost;
    interior[d] = ghost[d] < 0 ? 0 : nc - 1;
    const double* src = at(interior);
    double* dst = at(ghost);
    std::copy(src, src + ncomp_, dst);
  });
}

}  // namespace vdg
