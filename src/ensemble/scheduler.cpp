#include "ensemble/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdg {

Schedule scheduleMembers(const std::vector<ScenarioSpec>& specs, int numRanks) {
  if (numRanks < 1) throw std::invalid_argument("scheduleMembers: numRanks must be >= 1");
  Schedule sch;
  sch.numRanks = numRanks;
  sch.rankQueue.resize(static_cast<std::size_t>(numRanks));
  sch.rankLoad.assign(static_cast<std::size_t>(numRanks), 0.0);
  sch.members.reserve(specs.size());

  for (std::size_t m = 0; m < specs.size(); ++m) {
    const ScenarioSpec& spec = specs[m];
    const double cost = spec.costEstimate();
    const int want = std::clamp(spec.ranks, 1, numRanks);
    MemberPlacement p;
    p.member = static_cast<int>(m);
    p.numRanks = want;
    if (want == 1) {
      // Pack onto the least-loaded rank; ties break to the lowest index so
      // equal-cost members round-robin deterministically.
      int best = 0;
      for (int r = 1; r < numRanks; ++r)
        if (sch.rankLoad[static_cast<std::size_t>(r)] <
            sch.rankLoad[static_cast<std::size_t>(best)])
          best = r;
      p.leadRank = best;
      sch.rankLoad[static_cast<std::size_t>(best)] += cost;
    } else {
      // Sharded: the contiguous block whose current maximum load is
      // smallest (first such block on ties). The member's cost spreads
      // evenly over the block; the lead rank's queue drives it.
      int bestStart = 0;
      double bestMax = 0.0;
      for (int r0 = 0; r0 + want <= numRanks; ++r0) {
        double mx = 0.0;
        for (int r = r0; r < r0 + want; ++r)
          mx = std::max(mx, sch.rankLoad[static_cast<std::size_t>(r)]);
        if (r0 == 0 || mx < bestMax) {
          bestMax = mx;
          bestStart = r0;
        }
      }
      p.leadRank = bestStart;
      const double share = cost / want;
      for (int r = bestStart; r < bestStart + want; ++r)
        sch.rankLoad[static_cast<std::size_t>(r)] += share;
    }
    sch.rankQueue[static_cast<std::size_t>(p.leadRank)].push_back(p.member);
    sch.members.push_back(p);
  }
  return sch;
}

}  // namespace vdg
