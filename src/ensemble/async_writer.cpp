#include "ensemble/async_writer.hpp"

#include <stdexcept>
#include <utility>

#include "obs/clock.hpp"
#include "obs/profiler.hpp"

namespace vdg {

AsyncWriter::AsyncWriter() : AsyncWriter(Options()) {}

AsyncWriter::AsyncWriter(Options opts) : opts_(opts) {
  if (opts_.maxQueue == 0)
    throw std::invalid_argument("AsyncWriter: maxQueue must be positive");
  writer_ = std::thread([this] { writerLoop(); });
}

AsyncWriter::~AsyncWriter() {
  try {
    close();
  } catch (...) {
    // Destructor swallows IO errors; call close() explicitly to see them.
  }
}

void AsyncWriter::openCsv(const std::string& path, const std::string& header, bool resume) {
  Job job;
  job.kind = Job::Kind::OpenCsv;
  job.path = path;
  job.text = header;
  job.resume = resume;
  enqueue(std::move(job));
}

void AsyncWriter::appendLine(const std::string& path, std::string line) {
  Job job;
  job.kind = Job::Kind::Line;
  job.path = path;
  job.text = std::move(line);
  enqueue(std::move(job));
}

void AsyncWriter::writeFieldAsync(const std::string& path, Field field, double time) {
  Job job;
  job.kind = Job::Kind::Checkpoint;
  job.path = path;
  job.field = std::move(field);
  job.time = time;
  enqueue(std::move(job));
}

void AsyncWriter::enqueue(Job job) {
  std::unique_lock<std::mutex> lock(m_);
  if (stop_) throw std::logic_error("AsyncWriter: enqueue after close()");
  if (enqueued_ - written_ >= opts_.maxQueue) {
    // Backpressure: the disk is behind. This is the one place a stepping
    // thread can wait on IO, it is bounded by the high-water mark, and the
    // time is accounted so the bench can prove it never happens in a
    // healthy campaign.
    const auto t0 = MonoClock::now();
    spaceCv_.wait(lock, [this] { return enqueued_ - written_ < opts_.maxQueue || stop_; });
    const auto t1 = MonoClock::now();
    stats_.producerStallSeconds += secondsBetween(t0, t1);
    if (Profiler* p = prof_.load(std::memory_order_acquire))
      p->leafZone("io:stall", t0, t1);  // same timestamps as the stat
    if (stop_) throw std::logic_error("AsyncWriter: enqueue after close()");
  }
  front_.push_back(std::move(job));
  ++enqueued_;
  stats_.maxQueueDepth = std::max(stats_.maxQueueDepth, front_.size());
  jobsCv_.notify_one();
}

void AsyncWriter::writerLoop() {
  Profiler::setThisThreadTrack(1000, "io-writer");
  std::vector<Job> back;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(m_);
      jobsCv_.wait(lock, [this] { return !front_.empty() || stop_; });
      if (front_.empty() && stop_) return;
      // Double-buffer swap: producers keep filling a fresh front_ while
      // this thread drains the batch without holding the lock.
      back.swap(front_);
      ++stats_.batches;
    }
    const auto t0 = MonoClock::now();
    for (Job& job : back) {
      try {
        process(job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(m_);
        ++written_;
      }
      spaceCv_.notify_all();
    }
    // Push the batch to the OS before declaring it drained, so a flush()
    // returning means the bytes left the process.
    for (auto& [path, csv] : streams_) {
      try {
        csv.flush();
      } catch (...) {
        std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
      }
    }
    const auto tEnd = MonoClock::now();
    {
      std::lock_guard<std::mutex> lock(m_);
      stats_.ioSeconds += secondsBetween(t0, tEnd);
    }
    if (Profiler* p = prof_.load(std::memory_order_acquire))
      p->leafZone("io:drain", t0, tEnd);  // one zone per drained batch
    back.clear();
    drainCv_.notify_all();
  }
}

void AsyncWriter::process(Job& job) {
  switch (job.kind) {
    case Job::Kind::OpenCsv: {
      // Re-opening (a member resumed inside one campaign) replaces the
      // stream; resume mode appends to the existing file without
      // re-emitting the header.
      streams_.erase(job.path);
      streams_.try_emplace(job.path, job.path, job.text,
                           job.resume ? CsvWriter::Mode::Resume : CsvWriter::Mode::Truncate);
      break;
    }
    case Job::Kind::Line: {
      auto it = streams_.find(job.path);
      if (it == streams_.end())
        throw std::logic_error("AsyncWriter: appendLine to unopened CSV " + job.path);
      it->second.line(job.text);
      std::lock_guard<std::mutex> lock(m_);
      ++stats_.linesWritten;
      break;
    }
    case Job::Kind::Checkpoint: {
      writeField(job.path, *job.field, job.time);
      std::lock_guard<std::mutex> lock(m_);
      ++stats_.checkpointFieldsWritten;
      break;
    }
  }
}

void AsyncWriter::flush() {
  std::unique_lock<std::mutex> lock(m_);
  const std::uint64_t target = enqueued_;
  drainCv_.wait(lock, [&] { return written_ >= target; });
  if (error_) std::rethrow_exception(error_);
}

void AsyncWriter::close() {
  if (writer_.joinable()) {
    {
      std::unique_lock<std::mutex> lock(m_);
      const std::uint64_t target = enqueued_;
      drainCv_.wait(lock, [&] { return written_ >= target; });
      stop_ = true;
    }
    jobsCv_.notify_all();
    spaceCv_.notify_all();
    writer_.join();
  }
  std::lock_guard<std::mutex> lock(m_);
  if (error_) std::rethrow_exception(error_);
}

AsyncWriter::Stats AsyncWriter::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

}  // namespace vdg
