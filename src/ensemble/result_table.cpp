#include "ensemble/result_table.hpp"

#include <fstream>
#include <set>
#include <stdexcept>

#include "io/num_format.hpp"

namespace vdg {

namespace {

std::string csvEscape(const std::string& s) {
  // Error messages can carry commas/quotes; the numeric columns never do.
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

const char* toString(MemberResult::Status s) {
  switch (s) {
    case MemberResult::Status::Pending: return "pending";
    case MemberResult::Status::Done: return "done";
    case MemberResult::Status::Failed: return "failed";
  }
  return "?";
}

void writeResultTableCsv(const std::string& path, const std::vector<MemberResult>& results) {
  // Union of parameter keys -> one column each, in sorted (deterministic)
  // order; members without a key leave the cell empty.
  std::set<std::string> keys;
  for (const MemberResult& r : results)
    for (const auto& [k, v] : r.params) keys.insert(k);

  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("writeResultTableCsv: cannot open " + path);
  os << "name,status,leadRank,numRanks,steps,finalTime,wallSeconds,haloSeconds,"
        "computeSeconds,ioSeconds";
  for (const std::string& k : keys) os << "," << k;
  os << ",error\n";
  for (const MemberResult& r : results) {
    os << csvEscape(r.name) << "," << toString(r.status) << "," << r.leadRank << ","
       << r.numRanks << "," << r.steps << "," << formatDouble(r.finalTime) << ","
       << formatDouble(r.wallSeconds) << "," << formatDouble(r.haloSeconds) << ","
       << formatDouble(r.computeSeconds) << "," << formatDouble(r.ioSeconds);
    for (const std::string& k : keys) {
      os << ",";
      if (auto it = r.params.find(k); it != r.params.end()) os << formatDouble(it->second);
    }
    os << "," << csvEscape(r.error) << "\n";
  }
  if (!os) throw std::runtime_error("writeResultTableCsv: write failed for " + path);
}

void writeResultTableJson(const std::string& path, const std::vector<MemberResult>& results) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("writeResultTableJson: cannot open " + path);
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MemberResult& r = results[i];
    // jsonNumber: round-trip precision, and non-finite values become null
    // (a bare nan/inf token is invalid JSON and breaks conforming parsers).
    os << "  {\"name\": \"" << jsonEscape(r.name) << "\", \"status\": \"" << toString(r.status)
       << "\", \"leadRank\": " << r.leadRank << ", \"numRanks\": " << r.numRanks
       << ", \"steps\": " << r.steps << ", \"finalTime\": " << jsonNumber(r.finalTime)
       << ", \"wallSeconds\": " << jsonNumber(r.wallSeconds)
       << ", \"haloSeconds\": " << jsonNumber(r.haloSeconds)
       << ", \"computeSeconds\": " << jsonNumber(r.computeSeconds)
       << ", \"ioSeconds\": " << jsonNumber(r.ioSeconds) << ", \"params\": {";
    bool first = true;
    for (const auto& [k, v] : r.params) {
      os << (first ? "" : ", ") << "\"" << jsonEscape(k) << "\": " << jsonNumber(v);
      first = false;
    }
    os << "}";
    if (!r.error.empty()) os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
  if (!os) throw std::runtime_error("writeResultTableJson: write failed for " + path);
}

}  // namespace vdg
