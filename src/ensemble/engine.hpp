#pragma once
// The Ensemble engine: N ScenarioSpecs in, one campaign out. The engine
//
//  1. schedules members over a pool of rank threads (ensemble/scheduler:
//     small members pack many-per-rank, ranks>1 members shard over a
//     contiguous block as a DistributedSimulation led by the block's
//     first rank — the second use of the existing rank-pool machinery);
//  2. shares expensive immutable state across members: one factored
//     Poisson LU per ScenarioSpec::shareKey() group (handed to every
//     member builder; PoissonSolver solves are const and scratch-free),
//     while the compiled-kernel registry is process-global and shared by
//     construction — N members of one basis spec resolve the same kernel
//     set N times, compiling it zero extra times;
//  3. streams every member's TimeSeriesWriter rows and field_io v2 state
//     checkpoints through one double-buffered AsyncWriter thread, so a
//     member's RK stages never block on disk;
//  4. isolates failures: a member that throws (CFL blow-up at an
//     aggressive parameter point, a spec that fails validation) is
//     recorded as Failed with its message and its last checkpoint
//     retained, and the rest of the campaign proceeds untouched — a
//     member's trajectory is bitwise identical to the same scenario run
//     solo, neighbors' fates included (tests/test_ensemble.cpp).
//
// Members run with a serial RHS executor (threads(1)): the rank pool is
// the parallelism, exactly as in DistributedSimulation, which keeps
// members/sec scaling with pool size and every trajectory bitwise
// reproducible.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ensemble/async_writer.hpp"
#include "ensemble/result_table.hpp"
#include "ensemble/scenario.hpp"
#include "ensemble/scheduler.hpp"
#include "obs/profiler.hpp"

namespace vdg {

class DistributedSimulation;

struct EnsembleOptions {
  /// Size of the rank pool (threads stepping members concurrently).
  int numRanks = 1;
  /// Directory for per-member series CSVs, checkpoints, and the result
  /// table (created if absent).
  std::string outputDir = ".";
  /// Sample each member's time series every this many steps (0 = off).
  int sampleEvery = 1;
  /// Simulated-time interval between mid-run state checkpoints
  /// (0 = none; the latest checkpoint overwrites the previous one, so a
  /// failed member retains its most recent state on disk).
  double checkpointInterval = 0.0;
  /// Also checkpoint each member's final state on completion.
  bool finalCheckpoint = false;
  /// Retain sampled rows in MemberResult::series (post-processing without
  /// re-reading the CSVs, e.g. the dispersion-curve fit).
  bool keepSeries = false;
  /// Retain each member's final StateVector (bitwise-identity checks).
  bool keepFinalState = false;
  /// Abort a member that exceeds this many steps before tEnd (0 = off);
  /// the guard that turns a stalled dt into a recorded failure instead of
  /// a hung campaign.
  std::uint64_t maxStepsPerMember = 0;
  /// AsyncWriter queue bound (jobs) before producers feel backpressure.
  std::size_t maxQueuedJobs = 4096;
  /// Write <outputDir>/ensemble_results.{csv,json} after the run.
  bool writeResultTable = true;
  /// Campaign-wide instrumentation (src/obs). Default-inactive specs fall
  /// back to the VDG_TRACE / VDG_PROFILE environment opt-in. When active,
  /// one campaign Profiler is shared by the pool threads (each a labeled
  /// track: "pool rank r"), packed members' Simulations, and the
  /// AsyncWriter thread; member boundaries appear as member:<name> zones
  /// and the trace/report files are written at the end of run().
  ProfilingSpec profiling;
};

class Ensemble {
 public:
  /// Validates specs (unique, non-empty names — they key the output
  /// files), computes the deterministic schedule, and factors one shared
  /// PoissonSolver per multi-member shareKey group. Does not run anything.
  Ensemble(std::vector<ScenarioSpec> specs, EnsembleOptions opts);

  [[nodiscard]] int numMembers() const { return static_cast<int>(specs_.size()); }
  [[nodiscard]] const ScenarioSpec& spec(int m) const {
    return specs_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }
  /// Poisson signatures shared by >= 2 members (each factored exactly once).
  [[nodiscard]] int numSharedPoissonGroups() const {
    return static_cast<int>(sharedPoisson_.size());
  }

  /// Execute the campaign: run every member to its tEnd over the rank
  /// pool, drain the async writer, write the result table. Callable once.
  /// Member failures are recorded, not thrown; infrastructure failures
  /// (result table unwritable, IO thread errors) are thrown.
  void run();

  [[nodiscard]] const std::vector<MemberResult>& results() const { return results_; }
  [[nodiscard]] const MemberResult& result(int m) const {
    return results_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] int numDone() const;
  [[nodiscard]] int numFailed() const;
  /// IO-thread statistics captured at the end of run() (stall time is the
  /// bench's "stepping never blocks on IO" evidence).
  [[nodiscard]] const AsyncWriter::Stats& ioStats() const { return ioStats_; }
  /// The campaign profiler (null when instrumentation is inactive). After
  /// run(), its zone tree holds member:<name> wall zones, packed members'
  /// full step trees, and the io:stall/io:drain writer zones.
  [[nodiscard]] const Profiler* profiler() const { return profiler_.get(); }

 private:
  void runMember(int m, AsyncWriter& writer);
  void runPacked(int m, Simulation& sim, AsyncWriter& writer);
  void runSharded(int m, DistributedSimulation& dsim, AsyncWriter& writer);
  void checkpointState(const std::string& prefix, const StateVector& state, double time,
                       AsyncWriter& writer);
  [[nodiscard]] std::string outPath(const std::string& file) const;

  std::vector<ScenarioSpec> specs_;
  EnsembleOptions opts_;
  Schedule schedule_;
  std::map<std::string, std::shared_ptr<const PoissonSolver>> sharedPoisson_;
  std::vector<MemberResult> results_;
  AsyncWriter::Stats ioStats_;
  std::shared_ptr<Profiler> profiler_;       ///< campaign-wide; null when off
  std::vector<std::string> memberZones_;     ///< cached "member:<name>" zone names
  bool ran_ = false;
};

}  // namespace vdg
