#pragma once
// ScenarioSpec: one campaign member as *data* — grid, basis, species,
// collisions, field path, boundary conditions and run horizon, plus a
// free-form parameter map recording the scan knobs that produced it
// (k, nu, Ti/Te, wall bias, ...). A spec is the serializable unit the
// ensemble engine schedules: it converts to a Simulation::Builder on the
// rank that runs it (toBuilder), carries a sharing signature (shareKey)
// so members with identical (grid, p, field-BC) footprints reuse one
// factored Poisson LU, and serializes its identity + parameters into the
// campaign result table.
//
// Initial conditions are the one part of a scenario that is code, not
// data: each species holds a ScalarFn closure (typically capturing values
// from `params`), so specs are freely copyable into worker threads while
// the parameter map remains the serialized record of what the closure was
// built from.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/simulation.hpp"

namespace vdg {

/// Serializable description of one ensemble member.
struct ScenarioSpec {
  /// Unique member name: output files are derived from it
  /// (<outputDir>/<name>.csv, <outputDir>/<name>.ckpt.<slot>.fld).
  std::string name = "member";
  /// The scan knobs this member was generated from, recorded verbatim in
  /// the result table (the engine never interprets them).
  std::map<std::string, double> params;

  // --- discretization
  Grid confGrid;
  int polyOrder = 2;
  BasisFamily family = BasisFamily::Serendipity;
  double cflFrac = 0.9;
  Stepper stepper = Stepper::SspRk3;

  // --- species (SpeciesConfig carries velocity grid, init closure, and
  // optional BGK/LBO collision blocks).
  std::vector<SpeciesConfig> species;

  // --- field path
  enum class FieldKind {
    Poisson,  ///< electrostatic: E from Gauss's law each stage (the default)
    Maxwell,  ///< full hyperbolic Maxwell + current coupling
    Fixed,    ///< frozen field (free streaming / external field)
  };
  FieldKind field = FieldKind::Poisson;
  PoissonParams poisson;
  MaxwellParams maxwell;
  double backgroundCharge = 0.0;
  std::optional<VectorFn> initField;

  // --- physical boundaries (empty = fully periodic)
  struct BoundarySpec {
    int dim = 0;
    Edge edge = Edge::Lower;
    BcSpec spec;
    std::string species;  ///< empty = every species
    bool isField = false; ///< em-slot condition (Builder::fieldBoundary)
  };
  std::vector<BoundarySpec> boundaries;

  // --- run horizon and placement
  double tEnd = 1.0;
  /// Ranks this member wants: 1 (default) packs it many-per-rank; > 1
  /// shards it over a contiguous rank block via CartDecomp
  /// (DistributedSimulation), clipped to the pool size.
  int ranks = 1;
  /// Resume from a state checkpoint written under this prefix (see
  /// io/field_io.hpp writeStateCheckpoint); empty = fresh start.
  std::string resumeFrom;

  /// Assemble the Builder this spec describes (init projection happens at
  /// build() on the executing rank, not here).
  [[nodiscard]] Simulation::Builder toBuilder() const;

  /// Members with equal shareKey() solve the *same* global Poisson system
  /// — identical (grid, polyOrder, family, epsilon0, wall closure) — so
  /// the engine factors one LU per key and hands the immutable solver to
  /// every member in the group (PoissonSolver solves are const and
  /// scratch-free, safe under concurrent stepping). Empty for non-Poisson
  /// fields: nothing to share.
  [[nodiscard]] std::string shareKey() const;

  /// Relative cost estimate for the scheduler's load balance: total
  /// phase-space cells times the run horizon (a proxy for cells x steps;
  /// exact balance is not required, determinism is).
  [[nodiscard]] double costEstimate() const;

  /// "name k=0.5 nu=0.01 ..." — the serialized identity + parameter map
  /// recorded per member in the result table.
  [[nodiscard]] std::string serialize() const;
};

}  // namespace vdg
