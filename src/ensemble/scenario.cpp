#include "ensemble/scenario.hpp"

#include <sstream>

namespace vdg {

Simulation::Builder ScenarioSpec::toBuilder() const {
  Simulation::Builder b = Simulation::builder();
  b.confGrid(confGrid).basis(polyOrder, family).stepper(stepper).cflFrac(cflFrac);
  for (const SpeciesConfig& sp : species) b.species(sp);
  switch (field) {
    case FieldKind::Poisson:
      b.field(poisson).backgroundCharge(backgroundCharge);
      break;
    case FieldKind::Maxwell:
      b.field(maxwell).backgroundCharge(backgroundCharge);
      break;
    case FieldKind::Fixed:
      b.evolveField(false);
      break;
  }
  if (initField) b.initField(*initField);
  for (const BoundarySpec& bc : boundaries) {
    if (bc.isField)
      b.fieldBoundary(bc.dim, bc.edge, bc.spec);
    else if (bc.species.empty())
      b.boundary(bc.dim, bc.edge, bc.spec);
    else
      b.boundary(bc.species, bc.dim, bc.edge, bc.spec);
  }
  return b;
}

std::string ScenarioSpec::shareKey() const {
  if (field != FieldKind::Poisson) return {};
  // Everything the PoissonSolver constructor reads: global grid extents,
  // basis spec, epsilon0, backend selection (method/tolerance/iteration
  // cap), and the per-edge wall closures. Doubles are
  // printed with full precision (hexfloat) so two keys match only when the
  // factored operators would be bit-identical.
  std::ostringstream os;
  os << std::hexfloat;
  const Grid g = confGrid.parent();
  os << "p" << polyOrder << "f" << static_cast<int>(family) << "e" << poisson.epsilon0
     << "m" << static_cast<int>(poisson.method) << "t" << poisson.cgTol << "i"
     << poisson.cgMaxIter;
  for (int d = 0; d < g.ndim; ++d) {
    const auto s = static_cast<std::size_t>(d);
    os << "|" << g.cells[s] << "," << g.lower[s] << "," << g.upper[s];
    for (int e = 0; e < 2; ++e) {
      const PoissonBcSpec& bc = poisson.bc[s][static_cast<std::size_t>(e)];
      os << ";" << static_cast<int>(bc.kind) << ":" << bc.value;
    }
  }
  return os.str();
}

double ScenarioSpec::costEstimate() const {
  double phaseCells = 0.0;
  for (const SpeciesConfig& sp : species) {
    double c = static_cast<double>(confGrid.numCells());
    c *= static_cast<double>(sp.velGrid.numCells());
    phaseCells += c;
  }
  if (phaseCells <= 0.0) phaseCells = 1.0;
  return phaseCells * (tEnd > 0.0 ? tEnd : 1.0);
}

std::string ScenarioSpec::serialize() const {
  std::ostringstream os;
  os << name;
  for (const auto& [key, value] : params) os << " " << key << "=" << value;
  return os.str();
}

}  // namespace vdg
