#pragma once
// Deterministic placement of campaign members onto the rank pool. Small
// members (ranks == 1) pack many-per-rank onto the least-loaded rank;
// large members (ranks > 1) claim a contiguous rank block and run as a
// DistributedSimulation led by the block's first rank. Load is the
// ScenarioSpec cost estimate; every tie breaks toward the lowest rank
// index and members are placed in spec order, so the same specs + pool
// size always yield the same schedule (the member -> rank map is part of
// a campaign's reproducibility story, tests/test_ensemble.cpp pins it).

#include <vector>

#include "ensemble/scenario.hpp"

namespace vdg {

/// Where one member landed.
struct MemberPlacement {
  int member = -1;    ///< index into the spec list
  int leadRank = 0;   ///< the rank whose queue runs (or leads) the member
  int numRanks = 1;   ///< 1 = packed; > 1 = sharded over [leadRank, leadRank+numRanks)
};

struct Schedule {
  int numRanks = 1;
  std::vector<MemberPlacement> members;      ///< index-aligned with the specs
  std::vector<std::vector<int>> rankQueue;   ///< per rank: led members, in run order
  std::vector<double> rankLoad;              ///< final per-rank load estimate

  /// Members/rank-pool ratio ("pack factor") the throughput bench sweeps.
  [[nodiscard]] double packFactor() const {
    return numRanks > 0 ? static_cast<double>(members.size()) / numRanks : 0.0;
  }
};

/// Place every spec onto a pool of `numRanks` ranks (throws for
/// numRanks < 1). Sharded requests are clipped to the pool size.
[[nodiscard]] Schedule scheduleMembers(const std::vector<ScenarioSpec>& specs, int numRanks);

}  // namespace vdg
