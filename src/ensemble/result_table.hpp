#pragma once
// The campaign's summary artifacts: one row per member with its serialized
// identity/parameters, placement, status, and run counters — written as
// both CSV (spreadsheet-friendly) and JSON (the BENCH_*.json family's
// format) once every member has finished or failed.

#include <map>
#include <string>
#include <vector>

#include "app/state.hpp"

namespace vdg {

/// Outcome of one campaign member.
struct MemberResult {
  std::string name;
  std::map<std::string, double> params;  ///< the spec's scan knobs, verbatim

  enum class Status {
    Pending,  ///< not run yet (campaign aborted before reaching it)
    Done,     ///< reached its tEnd
    Failed,   ///< threw (CFL blow-up, bad spec, ...); error holds the message
  };
  Status status = Status::Pending;
  std::string error;

  int leadRank = 0;
  int numRanks = 1;
  int steps = 0;
  double finalTime = 0.0;
  double wallSeconds = 0.0;
  /// Lead-thread timing split (src/obs instrumentation): ghost-exchange
  /// seconds (sharded members; 0 for packed — no halo traffic), stepping
  /// seconds net of halo and IO, and enqueue-side IO seconds (series
  /// sampling + checkpoint copies; the writer-thread disk time is the
  /// campaign-wide ioStats()).
  double haloSeconds = 0.0;
  double computeSeconds = 0.0;
  double ioSeconds = 0.0;

  std::string seriesPath;        ///< per-member time-series CSV ("" if sampling off)
  std::string checkpointPrefix;  ///< last checkpoint prefix ("" if none written)

  /// Sampled rows (TimeSeriesWriter schema) when the engine was asked to
  /// keep them in memory — the dispersion-scan example fits gamma from
  /// these without re-parsing its own CSV.
  std::vector<std::vector<double>> series;
  /// Final state when the engine was asked to keep it (bitwise-identity
  /// checks against solo runs).
  StateVector finalState;
  bool hasFinalState = false;
};

[[nodiscard]] const char* toString(MemberResult::Status s);

/// Write the member table as CSV (name,status,leadRank,numRanks,steps,
/// finalTime,wallSeconds,haloSeconds,computeSeconds,ioSeconds,error + one
/// column per parameter key seen).
void writeResultTableCsv(const std::string& path, const std::vector<MemberResult>& results);

/// Write the member table as a JSON array.
void writeResultTableJson(const std::string& path, const std::vector<MemberResult>& results);

}  // namespace vdg
