#pragma once
// AsyncWriter: the campaign's one IO thread. Stepping threads enqueue
// cheap, self-contained jobs — a formatted CSV row, a CSV open/resume, a
// copied Field checkpoint — into the front of a double buffer under a
// short mutex (an O(1) vector push; never file IO), and the writer thread
// swaps the buffers and drains the back one with no lock held, so members'
// RK stages never wait on disk. The queue is bounded: a producer that
// outruns the disk blocks on the high-water mark and the blocked time is
// accounted (Stats::producerStallSeconds — the throughput bench reports
// it; in a healthy campaign it is zero).
//
// Jobs own everything they need (the checkpoint Field is copied on the
// stepping thread — memory work, not IO), so a member may finish and its
// TimeSeriesWriter be destroyed while rows are still queued. Per-path
// output order is the enqueue order. IO errors on the writer thread are
// captured and rethrown from the next flush()/close() on the caller side.
//
// Failure policy interplay: a member that throws mid-campaign stops
// enqueueing, but everything it enqueued before dying — including its
// last checkpoint — is still written. Nothing here cancels queued work.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/field_io.hpp"
#include "io/time_series.hpp"

namespace vdg {

class Profiler;

class AsyncWriter final : public RowSink {
 public:
  struct Options {
    /// Queue bound (jobs): producers block above it (accounted as stall).
    std::size_t maxQueue = 4096;
  };

  struct Stats {
    std::uint64_t linesWritten = 0;
    std::uint64_t checkpointFieldsWritten = 0;
    std::uint64_t batches = 0;              ///< buffer swaps the writer drained
    std::size_t maxQueueDepth = 0;          ///< high-water mark of the front buffer
    double ioSeconds = 0.0;                 ///< writer-thread wall time inside IO
    double producerStallSeconds = 0.0;      ///< producers blocked on the bound
  };

  AsyncWriter();  // default Options
  explicit AsyncWriter(Options opts);
  ~AsyncWriter() override;  // close()
  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  // --- RowSink (the TimeSeriesWriter seam)
  void openCsv(const std::string& path, const std::string& header, bool resume) override;
  void appendLine(const std::string& path, std::string line) override;
  void flushPath(const std::string& /*path*/) override { flush(); }

  /// Queue one field of a state checkpoint. `field` is a copy made by the
  /// caller (stepping-thread memory work); the writer thread serializes it
  /// with io/field_io writeField.
  void writeFieldAsync(const std::string& path, Field field, double time);

  /// Block until every job enqueued so far is written and the CSV streams
  /// are flushed; rethrows the first IO error captured on the writer
  /// thread, if any.
  void flush();

  /// flush() + join the writer thread (idempotent; the destructor calls it,
  /// swallowing errors — call close() yourself to see them).
  void close();

  [[nodiscard]] Stats stats() const;

  /// Attach an obs Profiler (null detaches). Producer stalls become
  /// io:stall leaf zones (the exact timestamps of producerStallSeconds)
  /// and each drained batch an io:drain zone on the writer's "io-writer"
  /// track. Settable at any time; the writer thread observes it lazily.
  void setProfiler(Profiler* p) { prof_.store(p, std::memory_order_release); }

 private:
  struct Job {
    enum class Kind { OpenCsv, Line, Checkpoint } kind = Kind::Line;
    std::string path;
    std::string text;  ///< header (OpenCsv) or row (Line)
    bool resume = false;
    std::optional<Field> field;  ///< Checkpoint payload
    double time = 0.0;
  };

  void enqueue(Job job);
  void writerLoop();
  void process(Job& job);

  const Options opts_;
  std::atomic<Profiler*> prof_{nullptr};

  mutable std::mutex m_;
  std::condition_variable jobsCv_;   ///< writer waits for work
  std::condition_variable spaceCv_;  ///< bounded producers wait for room
  std::condition_variable drainCv_;  ///< flush waits for the drained mark
  std::vector<Job> front_;           ///< producers append here (guarded by m_)
  std::uint64_t enqueued_ = 0;       ///< total jobs ever enqueued
  std::uint64_t written_ = 0;        ///< total jobs fully processed
  bool stop_ = false;
  std::exception_ptr error_;
  Stats stats_;

  /// CSV streams stay open across batches (one writer thread: no locking).
  std::map<std::string, CsvWriter> streams_;

  std::thread writer_;
};

}  // namespace vdg
