#include "ensemble/engine.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "app/distributed.hpp"
#include "app/projection.hpp"
#include "io/field_io.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace vdg {

namespace {

// Same formatting as TimeSeriesWriter's rows (default ostream precision),
// so sharded members' CSVs are indistinguishable from packed ones.
std::string formatRow(const std::vector<double>& row) {
  std::ostringstream os;
  for (std::size_t i = 0; i < row.size(); ++i) os << (i ? "," : "") << row[i];
  return os.str();
}

// The TimeSeriesWriter row of a sharded member: per-rank integrals are over
// disjoint subgrid windows, so the global moments/energies are plain sums —
// except absorbed/wallRate, which the stepper already reduces globally
// (take rank 0's copy). Runs on the member's lead thread between steps, so
// every rank is quiescent.
std::vector<double> sampleShardedRow(const DistributedSimulation& dsim) {
  const int nsp = dsim.rankSim(0).numSpecies();
  std::vector<double> row(3 + 5 * static_cast<std::size_t>(nsp), 0.0);
  row[0] = dsim.time();
  for (int r = 0; r < dsim.numRanks(); ++r) {
    const Simulation& sim = dsim.rankSim(r);
    const Simulation::Energetics e = sim.energetics();
    row[1] += e.fieldEnergy;
    row[2] += e.electricEnergy;
    const Grid& cg = sim.confGrid();
    const Basis& cb = sim.confBasis();
    const int npc = cb.numModes();
    for (int s = 0; s < nsp; ++s) {
      Field m0(cg, npc), m1(cg, 3 * npc), m2(cg, npc);
      sim.moments(s).compute(sim.distf(s), &m0, &m1, &m2);
      const std::size_t b = 3 + 5 * static_cast<std::size_t>(s);
      row[b + 0] += integrateDomain(cb, cg, m0);
      row[b + 1] += integrateDomain(cb, cg, m1, 0);
      row[b + 2] += integrateDomain(cb, cg, m2);
      if (r == 0) {
        row[b + 3] = sim.absorbedMass(s);
        row[b + 4] = sim.wallLossRate(s);
      }
    }
  }
  return row;
}

}  // namespace

Ensemble::Ensemble(std::vector<ScenarioSpec> specs, EnsembleOptions opts)
    : specs_(std::move(specs)), opts_(std::move(opts)) {
  if (opts_.numRanks < 1)
    throw std::invalid_argument("Ensemble: numRanks must be positive");
  if (opts_.sampleEvery < 0)
    throw std::invalid_argument("Ensemble: sampleEvery must be >= 0");
  std::set<std::string> names;
  for (const ScenarioSpec& s : specs_) {
    if (s.name.empty())
      throw std::invalid_argument("Ensemble: every member needs a name (it keys the outputs)");
    if (!names.insert(s.name).second)
      throw std::invalid_argument("Ensemble: duplicate member name '" + s.name + "'");
  }

  // Instrumentation: an explicit spec wins; an all-default one defers to
  // the VDG_TRACE / VDG_PROFILE environment, same as Simulation::Builder.
  if (!opts_.profiling.active()) opts_.profiling = ProfilingSpec::fromEnv();
  if (opts_.profiling.active()) {
    ProfilingSpec cs = opts_.profiling;
    cs.enabled = true;
    profiler_ = std::make_shared<Profiler>(std::move(cs), /*rank=*/0);
  }
  memberZones_.reserve(specs_.size());
  for (const ScenarioSpec& s : specs_) memberZones_.push_back("member:" + s.name);

  schedule_ = scheduleMembers(specs_, opts_.numRanks);
  results_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    MemberResult& r = results_[i];
    r.name = specs_[i].name;
    r.params = specs_[i].params;
    r.leadRank = schedule_.members[i].leadRank;
    r.numRanks = schedule_.members[i].numRanks;
  }

  // Factor one Poisson LU per signature that at least two members share;
  // singletons build their own inside build() on their rank thread (keeps
  // campaign setup off the critical path when nothing is actually shared).
  std::map<std::string, int> keyCount;
  for (const ScenarioSpec& s : specs_) {
    if (s.field != ScenarioSpec::FieldKind::Poisson) continue;
    const std::string key = s.shareKey();
    if (!key.empty()) ++keyCount[key];
  }
  for (const ScenarioSpec& s : specs_) {
    if (s.field != ScenarioSpec::FieldKind::Poisson) continue;
    const std::string key = s.shareKey();
    if (key.empty() || keyCount[key] < 2 || sharedPoisson_.count(key)) continue;
    try {
      const BasisSpec confSpec{s.confGrid.ndim, 0, s.polyOrder, s.family};
      sharedPoisson_.emplace(key, std::make_shared<const PoissonSolver>(
                                      confSpec, s.confGrid.parent(), s.poisson));
    } catch (...) {
      // A signature the solver rejects (e.g. cdim != 1): leave the group
      // unshared so each member fails (and is recorded) individually.
    }
  }
}

int Ensemble::numDone() const {
  int n = 0;
  for (const MemberResult& r : results_)
    if (r.status == MemberResult::Status::Done) ++n;
  return n;
}

int Ensemble::numFailed() const {
  int n = 0;
  for (const MemberResult& r : results_)
    if (r.status == MemberResult::Status::Failed) ++n;
  return n;
}

std::string Ensemble::outPath(const std::string& file) const {
  return (std::filesystem::path(opts_.outputDir) / file).string();
}

void Ensemble::run() {
  if (ran_) throw std::logic_error("Ensemble::run: a campaign runs once");
  ran_ = true;

  std::error_code ec;
  std::filesystem::create_directories(opts_.outputDir, ec);

  AsyncWriter writer({.maxQueue = opts_.maxQueuedJobs});
  writer.setProfiler(profiler_.get());  // null-safe: no-op when off

  // One thread per rank draining its queue in schedule order. A sharded
  // member occupies its whole block through the lead thread (the
  // DistributedSimulation's internal rank threads are its parallelism).
  const int numRanks = schedule_.numRanks;
  std::vector<std::exception_ptr> rankError(static_cast<std::size_t>(numRanks));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(numRanks));
  for (int r = 0; r < numRanks; ++r) {
    pool.emplace_back([this, r, &writer, &rankError] {
      try {
        if (profiler_)  // tid 0 is the owning thread; pool ranks start at 1
          Profiler::setThisThreadTrack(r + 1, "pool rank " + std::to_string(r));
        for (int m : schedule_.rankQueue[static_cast<std::size_t>(r)]) runMember(m, writer);
      } catch (...) {
        // runMember absorbs member failures; anything landing here is an
        // engine bug or the writer's rethrown IO error — infrastructure.
        rankError[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();

  // Drain the IO queue before reading stats, then retire the writer;
  // either call rethrows the first IO error seen on the writer thread.
  writer.flush();
  ioStats_ = writer.stats();
  writer.close();

  for (const std::exception_ptr& e : rankError)
    if (e) std::rethrow_exception(e);

  if (profiler_) {
    // Fold the writer-thread tallies into the campaign metrics, then write
    // the requested artifacts (the engine owns this shared profiler's
    // output, as Simulation::build's ownsProfilerOutput_ contract states).
    MetricsRegistry& met = profiler_->metrics();
    met.set("io.linesWritten", static_cast<double>(ioStats_.linesWritten));
    met.set("io.checkpointFields", static_cast<double>(ioStats_.checkpointFieldsWritten));
    met.set("io.batches", static_cast<double>(ioStats_.batches));
    met.set("io.maxQueueDepth", static_cast<double>(ioStats_.maxQueueDepth));
    met.set("io.writerSeconds", ioStats_.ioSeconds);
    met.set("io.producerStallSeconds", ioStats_.producerStallSeconds);
    if (!opts_.profiling.tracePath.empty())
      writeChromeTrace(opts_.profiling.tracePath, *profiler_);
    if (!opts_.profiling.reportPath.empty())
      profiler_->writeReportJson(opts_.profiling.reportPath);
  }

  if (opts_.writeResultTable) {
    writeResultTableCsv(outPath("ensemble_results.csv"), results_);
    writeResultTableJson(outPath("ensemble_results.json"), results_);
  }
}

void Ensemble::runMember(int m, AsyncWriter& writer) {
  const ScenarioSpec& spec = specs_[static_cast<std::size_t>(m)];
  const MemberPlacement& pl = schedule_.members[static_cast<std::size_t>(m)];
  MemberResult& res = results_[static_cast<std::size_t>(m)];
  const ScopedTimer memberZone(profiler_.get(),
                               memberZones_[static_cast<std::size_t>(m)].c_str());
  const auto t0 = MonoClock::now();
  try {
    Simulation::Builder b = spec.toBuilder();
    if (spec.field == ScenarioSpec::FieldKind::Poisson) {
      if (auto it = sharedPoisson_.find(spec.shareKey()); it != sharedPoisson_.end())
        b.poissonSolver(it->second);
    }
    // Packed members share the campaign profiler (their step trees nest
    // under this thread's member zone). Sharded members carry their own
    // always-on per-rank profilers inside DistributedSimulation; either
    // way the builder's env fallback is suppressed so member builds never
    // race to write the campaign's trace/report files themselves.
    if (pl.numRanks == 1 && profiler_)
      b.profiler(profiler_);
    else
      b.profiling(ProfilingSpec{});
    if (pl.numRanks == 1) {
      // Packed member: serial RHS executor — the rank pool is the
      // parallelism, and a fixed executor keeps the trajectory bitwise
      // independent of what else runs in the campaign.
      b.threads(1);
      Simulation sim = b.build();
      if (!spec.resumeFrom.empty()) {
        StateVector ckpt = sim.state().zerosLike();
        const double t = readStateCheckpoint(spec.resumeFrom, ckpt);
        sim.restore(ckpt, t);
      }
      runPacked(m, sim, writer);
    } else {
      DistributedSimulation dsim(b, pl.numRanks);
      if (!spec.resumeFrom.empty()) {
        StateVector global = dsim.globalStateLike();
        const double t = readStateCheckpoint(spec.resumeFrom, global);
        dsim.restore(global, t);
      }
      runSharded(m, dsim, writer);
    }
    res.status = MemberResult::Status::Done;
  } catch (const std::exception& e) {
    res.status = MemberResult::Status::Failed;
    res.error = e.what();
  } catch (...) {
    res.status = MemberResult::Status::Failed;
    res.error = "unknown error";
  }
  res.wallSeconds = secondsSince(t0);
  // Packed members have no halo traffic; compute is the wall minus the
  // enqueue-side IO time. Sharded members got the profiler-backed split
  // from their DistributedSimulation inside runSharded.
  if (pl.numRanks == 1)
    res.computeSeconds = std::max(0.0, res.wallSeconds - res.ioSeconds);
}

void Ensemble::checkpointState(const std::string& prefix, const StateVector& state, double time,
                               AsyncWriter& writer) {
  // One copied Field per slot: the copies are stepping-thread memory work,
  // the serialization happens on the writer thread. Re-checkpointing the
  // same prefix overwrites slot files in queue order, so the newest
  // complete checkpoint is what a failed member leaves behind.
  for (int i = 0; i < state.numSlots(); ++i)
    writer.writeFieldAsync(checkpointSlotPath(prefix, state.slotName(i)), state.slot(i), time);
}

void Ensemble::runPacked(int m, Simulation& sim, AsyncWriter& writer) {
  const ScenarioSpec& spec = specs_[static_cast<std::size_t>(m)];
  MemberResult& res = results_[static_cast<std::size_t>(m)];
  const bool resumed = !spec.resumeFrom.empty();

  std::optional<TimeSeriesWriter> ts;
  if (opts_.sampleEvery > 0) {
    const auto io0 = MonoClock::now();
    res.seriesPath = outPath(spec.name + ".csv");
    ts.emplace(res.seriesPath, sim, &writer, resumed);
    if (!resumed) {  // the t = 0 row was already written by the first leg
      ts->sample(sim);
      if (opts_.keepSeries) res.series.push_back(ts->lastRow());
    }
    res.ioSeconds += secondsSince(io0);
  }

  const std::string ckptPrefix = outPath(spec.name + ".ckpt");
  double nextCkpt = opts_.checkpointInterval > 0.0 ? sim.time() + opts_.checkpointInterval
                                                   : std::numeric_limits<double>::infinity();
  res.finalTime = sim.time();
  // Same loop (and tolerance) as Simulation::advanceTo, so a member's dt
  // sequence — hence its trajectory — is bitwise identical to a solo run.
  while (sim.time() < spec.tEnd - 1e-12) {
    const double dt = sim.step();
    ++res.steps;
    res.finalTime = sim.time();
    if (!std::isfinite(dt) || !std::isfinite(sim.time()))
      throw std::runtime_error(spec.name + ": non-finite dt at step " +
                               std::to_string(res.steps) + " (member diverged)");
    if (ts && res.steps % opts_.sampleEvery == 0) {
      const auto io0 = MonoClock::now();
      ts->sample(sim);
      if (opts_.keepSeries) res.series.push_back(ts->lastRow());
      res.ioSeconds += secondsSince(io0);
    }
    if (sim.time() >= nextCkpt) {
      const auto io0 = MonoClock::now();
      res.checkpointPrefix = ckptPrefix;
      checkpointState(ckptPrefix, sim.state(), sim.time(), writer);
      nextCkpt += opts_.checkpointInterval;
      res.ioSeconds += secondsSince(io0);
    }
    if (opts_.maxStepsPerMember > 0 &&
        static_cast<std::uint64_t>(res.steps) >= opts_.maxStepsPerMember &&
        sim.time() < spec.tEnd - 1e-12)
      throw std::runtime_error(spec.name + ": exceeded maxStepsPerMember (" +
                               std::to_string(opts_.maxStepsPerMember) + ") before tEnd");
  }
  if (opts_.finalCheckpoint) {
    const auto io0 = MonoClock::now();
    res.checkpointPrefix = ckptPrefix;
    checkpointState(ckptPrefix, sim.state(), sim.time(), writer);
    res.ioSeconds += secondsSince(io0);
  }
  if (opts_.keepFinalState) {
    res.finalState = sim.state();
    res.hasFinalState = true;
  }
}

void Ensemble::runSharded(int m, DistributedSimulation& dsim, AsyncWriter& writer) {
  const ScenarioSpec& spec = specs_[static_cast<std::size_t>(m)];
  MemberResult& res = results_[static_cast<std::size_t>(m)];
  const bool resumed = !spec.resumeFrom.empty();

  // No TimeSeriesWriter here: its integrals are window-local. The engine
  // assembles the global row from the rank shards (same schema, same
  // formatting) and feeds the sink directly.
  const bool sampling = opts_.sampleEvery > 0;
  if (sampling) {
    const auto io0 = MonoClock::now();
    res.seriesPath = outPath(spec.name + ".csv");
    writer.openCsv(res.seriesPath, TimeSeriesWriter::headerFor(dsim.rankSim(0)), resumed);
    if (!resumed) {
      std::vector<double> row = sampleShardedRow(dsim);
      writer.appendLine(res.seriesPath, formatRow(row));
      if (opts_.keepSeries) res.series.push_back(std::move(row));
    }
    res.ioSeconds += secondsSince(io0);
  }

  const std::string ckptPrefix = outPath(spec.name + ".ckpt");
  double nextCkpt = opts_.checkpointInterval > 0.0 ? dsim.time() + opts_.checkpointInterval
                                                   : std::numeric_limits<double>::infinity();
  res.finalTime = dsim.time();
  while (dsim.time() < spec.tEnd - 1e-12) {
    const double dt = dsim.step();
    ++res.steps;
    res.finalTime = dsim.time();
    if (!std::isfinite(dt) || !std::isfinite(dsim.time()))
      throw std::runtime_error(spec.name + ": non-finite dt at step " +
                               std::to_string(res.steps) + " (member diverged)");
    if (sampling && res.steps % opts_.sampleEvery == 0) {
      const auto io0 = MonoClock::now();
      std::vector<double> row = sampleShardedRow(dsim);
      writer.appendLine(res.seriesPath, formatRow(row));
      if (opts_.keepSeries) res.series.push_back(std::move(row));
      res.ioSeconds += secondsSince(io0);
    }
    if (dsim.time() >= nextCkpt) {
      const auto io0 = MonoClock::now();
      res.checkpointPrefix = ckptPrefix;
      checkpointState(ckptPrefix, dsim.gather(), dsim.time(), writer);
      nextCkpt += opts_.checkpointInterval;
      res.ioSeconds += secondsSince(io0);
    }
    if (opts_.maxStepsPerMember > 0 &&
        static_cast<std::uint64_t>(res.steps) >= opts_.maxStepsPerMember &&
        dsim.time() < spec.tEnd - 1e-12)
      throw std::runtime_error(spec.name + ": exceeded maxStepsPerMember (" +
                               std::to_string(opts_.maxStepsPerMember) + ") before tEnd");
  }
  if (opts_.finalCheckpoint) {
    const auto io0 = MonoClock::now();
    res.checkpointPrefix = ckptPrefix;
    checkpointState(ckptPrefix, dsim.gather(), dsim.time(), writer);
    res.ioSeconds += secondsSince(io0);
  }
  if (opts_.keepFinalState) {
    res.finalState = dsim.gather();
    res.hasFinalState = true;
  }
  // The profiler-backed two-level split: mean rank "step" seconds minus
  // halo (compute) and the HaloStats facade mean (halo).
  res.haloSeconds = dsim.haloSeconds();
  res.computeSeconds = dsim.computeSeconds();
}

}  // namespace vdg
